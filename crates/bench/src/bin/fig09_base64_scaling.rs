//! Figure 9: decompression bandwidth vs. core count, base64 random data.

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_io::SharedFileReader;

fn scaling_run(kind: &str, make_data: fn(usize, u64) -> Vec<u8>, include_pugz: bool) {
    let per_core = scaled(8 << 20, 1 << 20);
    let chunk_size = scaled(512 * 1024, 128 * 1024);
    println!(
        "{:<28} cores:bandwidth-MB/s pairs (uncompressed bandwidth)",
        "series"
    );

    // Single-threaded baselines, measured once on the single-core corpus.
    let data1 = make_data(per_core, 1);
    let compressed1 = rgz_gzip::GzipWriter::default().compress_pigz_like(&data1, 128 * 1024);
    let (out, duration) = best_of(|| rgz_gzip::decompress(&compressed1).unwrap());
    assert_eq!(out.len(), data1.len());
    print_series_row(
        "gzip (serial baseline)",
        &[(1, bandwidth_mb_per_s(data1.len(), duration))],
    );

    let mut rapid_no_index = Vec::new();
    let mut rapid_index = Vec::new();
    let mut pugz_series = Vec::new();
    for &cores in &core_counts() {
        let data = make_data(per_core * cores, cores as u64);
        let compressed = rgz_gzip::GzipWriter::default().compress_pigz_like(&data, 128 * 1024);
        println!(
            "# cores {cores}: corpus {} MB, compressed {} MB ({kind})",
            data.len() / 1_000_000,
            compressed.len() / 1_000_000
        );

        let options = ParallelGzipReaderOptions {
            parallelization: cores,
            chunk_size,
            ..Default::default()
        };
        let shared = SharedFileReader::from_bytes(compressed.clone());

        let (_, duration) = best_of(|| {
            let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
            let out = reader.decompress_all().unwrap();
            assert_eq!(out.len(), data.len());
        });
        rapid_no_index.push((cores, bandwidth_mb_per_s(data.len(), duration)));

        // Build the index once, then measure decompression with it.
        let mut index_builder = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
        let index = index_builder.build_full_index().unwrap();
        let (_, duration) = best_of(|| {
            let mut reader =
                ParallelGzipReader::with_index(shared.clone(), options.clone(), index.clone())
                    .unwrap();
            let out = reader.decompress_all().unwrap();
            assert_eq!(out.len(), data.len());
        });
        rapid_index.push((cores, bandwidth_mb_per_s(data.len(), duration)));

        if include_pugz {
            let pugz = rgz_baselines::PugzDecompressor {
                threads: cores,
                chunk_size,
                synchronized: true,
            };
            let (result, duration) = best_of(|| pugz.decompress(&compressed));
            match result {
                Ok(out) => {
                    assert_eq!(out.len(), data.len());
                    pugz_series.push((cores, bandwidth_mb_per_s(data.len(), duration)));
                }
                Err(_) => println!("# pugz cannot decompress this corpus (content restriction)"),
            }
        }
    }
    print_series_row("rapidgzip (no index)", &rapid_no_index);
    print_series_row("rapidgzip (index)", &rapid_index);
    if include_pugz && !pugz_series.is_empty() {
        print_series_row("pugz (sync)", &pugz_series);
    }
}

fn main() {
    print_header(
        "Figure 9 — parallel decompression of base64-encoded random data",
        "weak scaling: corpus grows with the core count; pigz-style compression",
    );
    scaling_run("base64", rgz_datagen::base64_random, true);
}
