//! Figure 12: influence of the chunk size on decompression bandwidth.

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_io::SharedFileReader;

fn main() {
    print_header(
        "Figure 12 — influence of the chunk size",
        "fixed core count, base64 corpus; rapidgzip vs. the pugz-style baseline",
    );
    let cores = available_cores().min(16);
    let total = scaled(256 << 20, 16 << 20);
    let data = rgz_datagen::base64_random(total, 12);
    let compressed = rgz_gzip::GzipWriter::default().compress_pigz_like(&data, 128 * 1024);
    println!(
        "# corpus {} MB, compressed {} MB, {} cores",
        data.len() / 1_000_000,
        compressed.len() / 1_000_000,
        cores
    );
    let shared = SharedFileReader::from_bytes(compressed.clone());

    let chunk_sizes: Vec<usize> = [
        64usize << 10,
        128 << 10,
        256 << 10,
        512 << 10,
        1 << 20,
        2 << 20,
        4 << 20,
        8 << 20,
    ]
    .into_iter()
    .filter(|&size| size <= compressed.len())
    .collect();

    println!(
        "{:>12} {:>18} {:>18} {:>12}",
        "chunk size", "rapidgzip MB/s", "pugz MB/s", "chunks"
    );
    for &chunk_size in &chunk_sizes {
        let options = ParallelGzipReaderOptions {
            parallelization: cores,
            chunk_size,
            ..Default::default()
        };
        let (_, duration) = best_of(|| {
            let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
            assert_eq!(reader.decompress_all().unwrap().len(), data.len());
        });
        let rapid = bandwidth_mb_per_s(data.len(), duration);

        let pugz = rgz_baselines::PugzDecompressor {
            threads: cores,
            chunk_size,
            synchronized: true,
        };
        let (result, duration) = best_of(|| pugz.decompress(&compressed));
        let pugz_bandwidth = match result {
            Ok(out) => {
                assert_eq!(out.len(), data.len());
                bandwidth_mb_per_s(data.len(), duration)
            }
            Err(_) => f64::NAN,
        };
        println!(
            "{:>12} {:>18.1} {:>18.1} {:>12}",
            format!("{} KiB", chunk_size / 1024),
            rapid,
            pugz_bandwidth,
            compressed.len() / chunk_size
        );
    }
}
