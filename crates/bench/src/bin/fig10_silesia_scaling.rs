//! Figure 10: decompression bandwidth vs. core count, Silesia-like corpus.

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_io::SharedFileReader;

fn main() {
    print_header(
        "Figure 10 — parallel decompression of the Silesia-like corpus",
        "marker-heavy data; pugz is excluded because the content leaves the 9-126 byte range",
    );
    let per_core = scaled(8 << 20, 1 << 20);
    let chunk_size = scaled(512 * 1024, 128 * 1024);

    let data1 = rgz_datagen::silesia_like(per_core, 1);
    let compressed1 = rgz_gzip::GzipWriter::default().compress_pigz_like(&data1, 128 * 1024);
    let (_, duration) = best_of(|| rgz_gzip::decompress(&compressed1).unwrap());
    print_series_row(
        "gzip (serial baseline)",
        &[(1, bandwidth_mb_per_s(data1.len(), duration))],
    );

    let mut rapid_no_index = Vec::new();
    let mut rapid_index = Vec::new();
    for &cores in &core_counts() {
        let data = rgz_datagen::silesia_like(per_core * cores, cores as u64);
        let compressed = rgz_gzip::GzipWriter::default().compress_pigz_like(&data, 128 * 1024);
        println!(
            "# cores {cores}: corpus {} MB, compressed {} MB, ratio {:.2}",
            data.len() / 1_000_000,
            compressed.len() / 1_000_000,
            data.len() as f64 / compressed.len() as f64
        );
        let options = ParallelGzipReaderOptions {
            parallelization: cores,
            chunk_size,
            ..Default::default()
        };
        let shared = SharedFileReader::from_bytes(compressed.clone());
        let (_, duration) = best_of(|| {
            let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
            assert_eq!(reader.decompress_all().unwrap().len(), data.len());
        });
        rapid_no_index.push((cores, bandwidth_mb_per_s(data.len(), duration)));

        let mut index_builder = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
        let index = index_builder.build_full_index().unwrap();
        let (_, duration) = best_of(|| {
            let mut reader =
                ParallelGzipReader::with_index(shared.clone(), options.clone(), index.clone())
                    .unwrap();
            assert_eq!(reader.decompress_all().unwrap().len(), data.len());
        });
        rapid_index.push((cores, bandwidth_mb_per_s(data.len(), duration)));
    }
    print_series_row("rapidgzip (no index)", &rapid_no_index);
    print_series_row("rapidgzip (index)", &rapid_index);
}
