//! Figure 8: strided parallel reads through the SharedFileReader.

use rgz_bench::*;
use rgz_io::{FileReader, SharedFileReader};

fn main() {
    print_header(
        "Figure 8 — SharedFileReader strided read bandwidth vs. thread count",
        "each thread reads interleaved 128 KiB stripes of the same in-memory file",
    );
    let size = scaled(1 << 30, 64 << 20);
    let data = rgz_datagen::base64_random(size, 8);
    let reader = SharedFileReader::from_bytes(data);
    let stripe = 128 * 1024usize;
    println!("{:>8} {:>16}", "threads", "bandwidth MB/s");
    for &threads in &core_counts() {
        let (_, duration) = best_of(|| {
            std::thread::scope(|scope| {
                for thread_index in 0..threads {
                    let reader = reader.clone();
                    scope.spawn(move || {
                        let mut offset = (thread_index * stripe) as u64;
                        let mut total = 0usize;
                        while offset < reader.size() {
                            total += reader.read_range(offset, stripe).unwrap().len();
                            offset += (stripe * threads) as u64;
                        }
                        total
                    });
                }
            });
        });
        println!(
            "{:>8} {:>16.1}",
            threads,
            bandwidth_mb_per_s(size, duration)
        );
    }
}
