//! Table 5: seek-point index memory — raw (v1) vs. compressed vs. sparse
//! windows.
//!
//! A raw index stores one 32 KiB window per chunk (~8 MiB of index per GiB
//! of compressed input at the 4 MiB default chunk size).  The `rgz_window`
//! store sparsifies each window down to the bytes its chunk actually
//! references and deflate-compresses the result; this harness quantifies the
//! effect per corpus and relates it to the serialized v1/v2 index sizes.

use rgz_bench::*;
use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rgz_gzip::GzipWriter;
use rgz_index::IndexFormat;
use rgz_io::SharedFileReader;

fn main() {
    print_header(
        "Table 5 — index memory: raw vs. compressed vs. sparse windows",
        "per corpus: serialized v1/v2 index size and in-memory window store",
    );
    let total = scaled(64 << 20, 8 << 20);
    let chunk_size = scaled(1 << 20, 256 << 10);
    let corpora: Vec<(&str, Vec<u8>)> = vec![
        ("base64", rgz_datagen::base64_random(total, 51)),
        ("fastq", rgz_datagen::fastq_of_size(total, 52)),
        ("silesia", rgz_datagen::silesia_like(total, 53)),
    ];

    println!(
        "{:<10} {:>7} {:>12} {:>12} {:>7} {:>12} {:>12} {:>12}",
        "corpus", "points", "v1 bytes", "v2 bytes", "v1/v2", "raw win B", "masked B", "stored B"
    );
    for (name, data) in corpora {
        let compressed = GzipWriter::default().compress(&data);
        let mut reader = ParallelGzipReader::new(
            SharedFileReader::from_bytes(compressed),
            ParallelGzipReaderOptions {
                parallelization: available_cores(),
                chunk_size,
                ..Default::default()
            },
        )
        .unwrap();
        let index = reader.build_full_index().unwrap();
        let v1 = index.export_as(IndexFormat::V1);
        let v2 = index.export_as(IndexFormat::V2);
        let statistics = reader.window_statistics();
        println!(
            "{:<10} {:>7} {:>12} {:>12} {:>7.2} {:>12} {:>12} {:>12}",
            name,
            index.block_map.len(),
            v1.len(),
            v2.len(),
            v1.len() as f64 / v2.len() as f64,
            statistics.original_bytes,
            statistics.window_bytes,
            statistics.stored_bytes,
        );
    }
}
