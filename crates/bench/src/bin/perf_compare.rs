//! Compares a per-PR bench report (`BENCH_pr.json`) against the checked-in
//! `bench/baseline.json` and fails (exit code 1) on regressions.
//!
//! Both files hold one [`rgz_bench::JsonReport`] line per bench binary:
//!
//! ```json
//! {"bench":"table2_components","mode":"quick","metrics":{"speedup_base64":1.5,...}}
//! ```
//!
//! Rules, applied per metric present in **both** files:
//!
//! * higher is better (all metrics are bandwidths or speedups);
//! * fail when `current < baseline * (1 - threshold)` (default threshold
//!   0.15, override with `--threshold 0.10`);
//! * a baseline line may carry a `"floors"` object of absolute minimums
//!   (machine-independent gates like the multi-symbol speedup ratios); fail
//!   when `current < floor` regardless of the relative threshold;
//! * every baseline key must be present in the current report: a missing
//!   bench line or metric counts as a failure, so a bench bin dropping out
//!   of the CI invocation list cannot pass unnoticed.
//!
//! Absolute bandwidths vary with the runner hardware, so the baseline keeps
//! the relative threshold loose; the `speedup_*` ratios are hardware-
//! independent and gated by floors.
//!
//! Usage: `perf_compare <baseline.json> <current.json> [--threshold 0.15]`

use std::collections::BTreeMap;
use std::process::ExitCode;

use rgz_bench::json::{parse, JsonValue};

struct Report {
    metrics: BTreeMap<String, f64>,
    floors: BTreeMap<String, f64>,
}

fn number_map(value: Option<&JsonValue>) -> BTreeMap<String, f64> {
    value
        .and_then(JsonValue::as_object)
        .map(|map| {
            map.iter()
                .filter_map(|(k, v)| v.as_number().map(|n| (k.clone(), n)))
                .collect()
        })
        .unwrap_or_default()
}

/// Parses a JSONL report file into `bench name -> Report`.
fn load_reports(path: &str) -> Result<BTreeMap<String, Report>, String> {
    let content = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut reports = BTreeMap::new();
    for (index, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse(line).map_err(|e| format!("{path}:{}: {e}", index + 1))?;
        let bench = value
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("{path}:{}: missing \"bench\" key", index + 1))?
            .to_string();
        reports.insert(
            bench,
            Report {
                metrics: number_map(value.get("metrics")),
                floors: number_map(value.get("floors")),
            },
        );
    }
    Ok(reports)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut threshold = 0.15f64;
    let mut paths = Vec::new();
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(value) if (0.0..1.0).contains(&value) => threshold = value,
                _ => {
                    eprintln!("--threshold needs a value in [0, 1)");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: perf_compare <baseline.json> <current.json> [--threshold 0.15]");
        return ExitCode::from(2);
    };

    let (baseline, current) = match (load_reports(baseline_path), load_reports(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let mut failures = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<24} {:<32} {:>12} {:>12} {:>8}  verdict",
        "bench", "metric", "baseline", "current", "ratio"
    );
    for (bench, base_report) in &baseline {
        let Some(current_report) = current.get(bench) else {
            // A bench bin silently dropping out of CI must not pass: every
            // baseline key it carried counts as a failed check.
            let missing = (base_report.metrics.len() + base_report.floors.len()).max(1);
            eprintln!(
                "error: bench {bench} missing from {current_path} ({missing} baseline key(s) unchecked)"
            );
            failures += missing;
            continue;
        };
        for (metric, &base_value) in &base_report.metrics {
            let Some(&current_value) = current_report.metrics.get(metric) else {
                eprintln!("error: metric {bench}/{metric} missing from {current_path}");
                failures += 1;
                continue;
            };
            compared += 1;
            let ratio = if base_value > 0.0 {
                current_value / base_value
            } else {
                1.0
            };
            let floor = base_report.floors.get(metric).copied();
            let below_threshold = current_value < base_value * (1.0 - threshold);
            let below_floor = floor.is_some_and(|f| current_value < f);
            let verdict = if below_floor {
                failures += 1;
                "FAIL (floor)"
            } else if below_threshold {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "{bench:<24} {metric:<32} {base_value:>12.3} {current_value:>12.3} {ratio:>7.2}x  {verdict}"
            );
        }
        // Floors apply even to metrics without a baseline value.
        for (metric, &floor) in &base_report.floors {
            if base_report.metrics.contains_key(metric) {
                continue;
            }
            let Some(&current_value) = current_report.metrics.get(metric) else {
                eprintln!("warning: floored metric {bench}/{metric} missing from {current_path}");
                failures += 1;
                continue;
            };
            compared += 1;
            let verdict = if current_value < floor {
                failures += 1;
                "FAIL (floor)"
            } else {
                "ok"
            };
            println!(
                "{bench:<24} {metric:<32} {floor:>11.3}f {current_value:>12.3} {:>8}  {verdict}",
                ""
            );
        }
    }
    println!();
    if failures > 0 {
        println!("perf_compare: {failures} of {compared} checks FAILED (threshold {threshold})");
        ExitCode::FAILURE
    } else {
        println!("perf_compare: all {compared} checks passed (threshold {threshold})");
        ExitCode::SUCCESS
    }
}
