//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary in `src/bin/` (see DESIGN.md §4 for the mapping); the Criterion
//! benches under `benches/` cover the micro-benchmarks (Figure 7, Table 2).
//!
//! All harness binaries accept `--quick` (or the environment variable
//! `RGZ_BENCH_QUICK=1`) to run at CI-friendly sizes; without it they use
//! larger corpora that take a few minutes in total.
//!
//! Binaries wired into the CI `perf-smoke` job additionally accept `--json`,
//! which replaces the human-readable tables with one machine-readable JSON
//! line on stdout (see [`JsonReport`]).  The checked-in `bench/baseline.json`
//! and the per-PR `BENCH_pr.json` artifact both use this format, one report
//! per line; `perf_compare` diffs them and enforces the regression threshold.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

pub mod json;

pub use json::JsonValue;

/// Returns true when the caller asked for CI-sized benchmarks.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("RGZ_BENCH_QUICK")
            .map(|v| v != "0")
            .unwrap_or(false)
}

/// Returns true when the caller asked for machine-readable one-line JSON
/// output instead of the human tables.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Accumulates a bench binary's metrics and renders them as the one-line
/// JSON document shared by `BENCH_pr.json`, `bench/baseline.json` and the
/// CI `perf-smoke` job.
///
/// Metric keys are sorted (BTreeMap) so output is diffable run to run.
#[derive(Debug, Clone)]
pub struct JsonReport {
    bench: String,
    metrics: BTreeMap<String, f64>,
}

impl JsonReport {
    /// Creates a report for the bench binary `bench`.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Records one metric. Non-finite values are recorded as 0 (JSON has no
    /// NaN/Infinity, and a zero fails a regression gate loudly rather than
    /// poisoning the file).
    pub fn record(&mut self, key: &str, value: f64) {
        let value = if value.is_finite() { value } else { 0.0 };
        self.metrics.insert(key.to_string(), value);
    }

    /// Records a whole block of metrics under a common key prefix — used to
    /// fold an `rgz_trace::MetricsReport::flat_metrics()` map into a bench
    /// report.
    pub fn record_block(&mut self, prefix: &str, metrics: &BTreeMap<String, f64>) {
        for (key, value) in metrics {
            self.record(&format!("{prefix}{key}"), *value);
        }
    }

    /// Renders the one-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"bench\":{},\"mode\":{},\"metrics\":{{",
            json::escape_string(&self.bench),
            json::escape_string(if quick_mode() { "quick" } else { "full" }),
        ));
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json::escape_string(key), value));
        }
        out.push_str("}}");
        out
    }

    /// Prints the report to stdout (the contract of `--json` mode: exactly
    /// one line, nothing else on stdout).
    pub fn emit(&self) {
        println!("{}", self.to_json());
    }
}

/// Picks `full` or `quick` depending on [`quick_mode`].
pub fn scaled(full: usize, quick: usize) -> usize {
    if quick_mode() {
        quick
    } else {
        full
    }
}

/// Number of repetitions per measurement point.
pub fn repetitions() -> usize {
    if quick_mode() {
        2
    } else {
        3
    }
}

/// Available logical cores.
pub fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The list of core counts to sweep (1, 2, 4, … up to the machine size),
/// mirroring the x-axes of Figures 9–11.
pub fn core_counts() -> Vec<usize> {
    let maximum = available_cores();
    let mut counts = vec![1usize];
    while let Some(&last) = counts.last() {
        let next = last * 2;
        if next >= maximum {
            break;
        }
        counts.push(next);
    }
    if *counts.last().unwrap() != maximum {
        counts.push(maximum);
    }
    counts
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Runs `f` `repetitions()` times and returns the best (minimum) duration,
/// which is the least noisy estimator for throughput benchmarks.
pub fn best_of<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let mut best: Option<Duration> = None;
    let mut last_value = None;
    for _ in 0..repetitions() {
        let (value, duration) = time(&mut f);
        best = Some(best.map_or(duration, |b| b.min(duration)));
        last_value = Some(value);
    }
    (last_value.unwrap(), best.unwrap())
}

/// Bandwidth in MB/s (decimal megabytes, as in the paper).
pub fn bandwidth_mb_per_s(bytes: usize, duration: Duration) -> f64 {
    bytes as f64 / 1e6 / duration.as_secs_f64().max(1e-9)
}

/// Prints a standard harness header.
pub fn print_header(title: &str, description: &str) {
    println!("# {title}");
    println!("# {description}");
    println!(
        "# machine: {} logical cores; mode: {}",
        available_cores(),
        if quick_mode() { "quick" } else { "full" }
    );
}

/// Formats a bandwidth series row.
pub fn print_series_row(label: &str, values: &[(usize, f64)]) {
    print!("{label:<28}");
    for (x, bandwidth) in values {
        print!(" {x:>4}:{bandwidth:>9.1}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_are_increasing_and_end_at_the_machine_size() {
        let counts = core_counts();
        assert!(!counts.is_empty());
        assert_eq!(*counts.last().unwrap(), available_cores());
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(counts[0], 1);
    }

    #[test]
    fn bandwidth_computation() {
        let bandwidth = bandwidth_mb_per_s(10_000_000, Duration::from_secs(1));
        assert!((bandwidth - 10.0).abs() < 1e-9);
    }

    #[test]
    fn best_of_returns_a_duration() {
        let (value, duration) = best_of(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(duration.as_nanos() > 0 || duration.is_zero());
    }
}
