//! A minimal JSON reader/writer for the bench-report format.
//!
//! The workspace intentionally has no registry dependencies (everything under
//! `vendor/` is a hand-written stand-in), so rather than vendoring serde this
//! module implements the small JSON subset the perf harness emits: objects,
//! strings, numbers, booleans and null, with `\"`/`\\`/`\n`/`\t`/`\r`
//! string escapes.  Arrays are accepted on input for forward compatibility.

use std::collections::BTreeMap;

/// A parsed JSON value (bench-report subset).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.get(key)
    }
}

/// Escapes a string for embedding in a JSON document (including the quotes).
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document. Trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut position = 0usize;
    let value = parse_value(bytes, &mut position)?;
    skip_whitespace(bytes, &mut position);
    if position != bytes.len() {
        return Err(format!("trailing content at byte {position}"));
    }
    Ok(value)
}

fn skip_whitespace(bytes: &[u8], position: &mut usize) {
    while *position < bytes.len() && bytes[*position].is_ascii_whitespace() {
        *position += 1;
    }
}

fn expect(bytes: &[u8], position: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*position) == Some(&byte) {
        *position += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {position}",
            byte as char,
            position = *position
        ))
    }
}

fn parse_value(bytes: &[u8], position: &mut usize) -> Result<JsonValue, String> {
    skip_whitespace(bytes, position);
    match bytes.get(*position) {
        Some(b'{') => parse_object(bytes, position),
        Some(b'[') => parse_array(bytes, position),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, position)?)),
        Some(b't') => parse_keyword(bytes, position, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, position, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, position, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, position),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_keyword(
    bytes: &[u8],
    position: &mut usize,
    keyword: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*position..].starts_with(keyword.as_bytes()) {
        *position += keyword.len();
        Ok(value)
    } else {
        Err(format!(
            "invalid literal at byte {position}",
            position = *position
        ))
    }
}

fn parse_number(bytes: &[u8], position: &mut usize) -> Result<JsonValue, String> {
    let start = *position;
    while *position < bytes.len()
        && matches!(
            bytes[*position],
            b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
        )
    {
        *position += 1;
    }
    std::str::from_utf8(&bytes[start..*position])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], position: &mut usize) -> Result<String, String> {
    expect(bytes, position, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*position) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *position += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *position += 1;
                match bytes.get(*position) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*position + 1..*position + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        out.push(char::from_u32(hex).ok_or("invalid \\u code point")?);
                        *position += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *position)),
                }
                *position += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*position..])
                    .map_err(|_| "invalid UTF-8 in string")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *position += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], position: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, position, b'[')?;
    let mut items = Vec::new();
    skip_whitespace(bytes, position);
    if bytes.get(*position) == Some(&b']') {
        *position += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, position)?);
        skip_whitespace(bytes, position);
        match bytes.get(*position) {
            Some(b',') => *position += 1,
            Some(b']') => {
                *position += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *position)),
        }
    }
}

fn parse_object(bytes: &[u8], position: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, position, b'{')?;
    let mut map = BTreeMap::new();
    skip_whitespace(bytes, position);
    if bytes.get(*position) == Some(&b'}') {
        *position += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_whitespace(bytes, position);
        let key = parse_string(bytes, position)?;
        skip_whitespace(bytes, position);
        expect(bytes, position, b':')?;
        let value = parse_value(bytes, position)?;
        map.insert(key, value);
        skip_whitespace(bytes, position);
        match bytes.get(*position) {
            Some(b',') => *position += 1,
            Some(b'}') => {
                *position += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *position)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_report() {
        let line = r#"{"bench":"table2_components","mode":"quick","metrics":{"a_mb_s":123.5,"speedup":1.42}}"#;
        let value = parse(line).unwrap();
        assert_eq!(
            value.get("bench").unwrap().as_str(),
            Some("table2_components")
        );
        let metrics = value.get("metrics").unwrap().as_object().unwrap();
        assert_eq!(metrics["a_mb_s"].as_number(), Some(123.5));
        assert_eq!(metrics["speedup"].as_number(), Some(1.42));
    }

    #[test]
    fn round_trips_escapes_and_structure() {
        let input = r#"{"key with \"quote\"":[1,-2.5,1e3,true,false,null,"line\nbreak"]}"#;
        let value = parse(input).unwrap();
        let items = match value.get("key with \"quote\"").unwrap() {
            JsonValue::Array(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(items[0].as_number(), Some(1.0));
        assert_eq!(items[1].as_number(), Some(-2.5));
        assert_eq!(items[2].as_number(), Some(1000.0));
        assert_eq!(items[3], JsonValue::Bool(true));
        assert_eq!(items[6].as_str(), Some("line\nbreak"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} trailing"#).is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,2,,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn escape_string_round_trips() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\there",
            "new\nline",
            "back\\slash",
        ] {
            let escaped = escape_string(s);
            let parsed = parse(&escaped).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "escaped form: {escaped}");
        }
    }
}
