//! Block finders — locating candidate DEFLATE block starts at arbitrary bit
//! offsets (§3.4 of the paper).
//!
//! A chunk decompression thread is handed a guessed offset in the middle of a
//! gzip file and must locate the next Deflate block before it can start the
//! two-stage decoding.  Because blocks are not byte-aligned and carry no
//! magic number this search is probabilistic: the finders below may return
//! false positives (which the cache-and-prefetch architecture tolerates) but
//! should not miss real blocks.
//!
//! Two specialised finders exist, combined by [`CombinedBlockFinder`]:
//!
//! * [`UncompressedBlockFinder`] for Non-Compressed Blocks (§3.4.1),
//! * [`DynamicBlockFinder`] for Dynamic Blocks (§3.4.2), in the four
//!   implementation variants compared in Table 2 of the paper.

pub mod dynamic;
pub mod uncompressed;

pub use dynamic::{
    active_isa as finder_active_isa, CustomParseFinder, DynamicBlockFinder, FilterStatistics,
    PugzLikeFinder, SkipLutFinder, TrialInflateFinder,
};
pub use uncompressed::UncompressedBlockFinder;

/// What kind of block a candidate offset refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// Candidate found by the Non-Compressed Block finder.
    Uncompressed,
    /// Candidate found by the Dynamic Block finder.
    Dynamic,
}

/// A candidate block start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Bit offset of the candidate block header.
    pub bit_offset: u64,
    /// Which finder produced it.
    pub kind: CandidateKind,
}

/// Common interface of all block finders.
pub trait BlockFinder {
    /// Returns the next candidate block offset at or after `start_bit`, or
    /// `None` if the end of `data` is reached first.
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64>;
}

/// Combines the Non-Compressed and Dynamic block finders by returning
/// whichever candidate comes first, as described in §3.4.
#[derive(Debug, Default, Clone)]
pub struct CombinedBlockFinder {
    uncompressed: UncompressedBlockFinder,
    dynamic: DynamicBlockFinder,
}

impl CombinedBlockFinder {
    /// Creates a combined finder with default sub-finders.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next candidate together with the finder that produced it.
    pub fn find_next_candidate(&self, data: &[u8], start_bit: u64) -> Option<Candidate> {
        let uncompressed = self.uncompressed.find_next(data, start_bit);
        let dynamic = self.dynamic.find_next(data, start_bit);
        match (uncompressed, dynamic) {
            (Some(u), Some(d)) if u <= d => Some(Candidate {
                bit_offset: u,
                kind: CandidateKind::Uncompressed,
            }),
            (_, Some(d)) => Some(Candidate {
                bit_offset: d,
                kind: CandidateKind::Dynamic,
            }),
            (Some(u), None) => Some(Candidate {
                bit_offset: u,
                kind: CandidateKind::Uncompressed,
            }),
            (None, None) => None,
        }
    }
}

impl BlockFinder for CombinedBlockFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        self.find_next_candidate(data, start_bit)
            .map(|c| c.bit_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rgz_deflate::{CompressionLevel, CompressorOptions, DeflateCompressor};

    /// Compresses text-like data and returns (compressed bytes, real block
    /// offsets in bits) for finder recall tests.
    pub(crate) fn compressed_fixture(force_stored: bool) -> (Vec<u8>, Vec<u64>) {
        let mut data = Vec::new();
        for i in 0..200_000u32 {
            data.extend_from_slice(format!("token-{:06} lorem ipsum\n", i % 4000).as_bytes());
        }
        let options = CompressorOptions {
            level: if force_stored {
                CompressionLevel::Stored
            } else {
                CompressionLevel::Default
            },
            block_size: 32 * 1024,
            force_dynamic: false,
        };
        let compressed = DeflateCompressor::new(options).compress(&data);
        let mut reader = rgz_bitio::BitReader::new(&compressed);
        let mut out = Vec::new();
        let outcome = rgz_deflate::inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        assert_eq!(out, data);
        let offsets = outcome.blocks.iter().map(|b| b.bit_offset).collect();
        (compressed, offsets)
    }

    #[test]
    fn combined_finder_locates_real_dynamic_blocks() {
        let (compressed, offsets) = compressed_fixture(false);
        let finder = CombinedBlockFinder::new();
        // Every real block (except possibly a tiny final fixed/stored one)
        // must be discoverable when searching from shortly before it.
        for &offset in offsets.iter().take(5) {
            let start = offset.saturating_sub(64);
            let mut candidate = finder.find_next(&compressed, start);
            // Skip over false positives until we reach the real offset.
            while let Some(found) = candidate {
                if found >= offset {
                    break;
                }
                candidate = finder.find_next(&compressed, found + 1);
            }
            assert_eq!(candidate, Some(offset));
        }
    }

    #[test]
    fn combined_finder_locates_stored_blocks() {
        let (compressed, offsets) = compressed_fixture(true);
        let finder = CombinedBlockFinder::new();
        let candidate = finder.find_next_candidate(&compressed, 0).unwrap();
        assert_eq!(candidate.kind, CandidateKind::Uncompressed);
        // Stored-block bit offsets are ambiguous because the zero padding is
        // indistinguishable from the zero header bits (§3.4.1); the candidate
        // must resolve to the same LEN field as a real block though.
        let len_byte = |bit: u64| (bit + 3).div_ceil(8);
        assert!(
            offsets
                .iter()
                .any(|&o| len_byte(o) == len_byte(candidate.bit_offset)),
            "candidate {} does not match any real stored block {:?}",
            candidate.bit_offset,
            offsets
        );
    }

    #[test]
    fn find_next_past_the_end_returns_none() {
        let finder = CombinedBlockFinder::new();
        assert_eq!(finder.find_next(&[], 0), None);
        assert_eq!(finder.find_next(&[0u8; 16], 16 * 8), None);
    }
}
