//! Finders for Dynamic Blocks (§3.4.2), in the four implementation variants
//! whose bandwidths Table 2 of the paper compares:
//!
//! * [`TrialInflateFinder`] — "DBF zlib": try to fully decode at each offset.
//! * [`CustomParseFinder`] — "DBF custom deflate": parse only the block
//!   header with early exits.
//! * [`SkipLutFinder`] — "DBF skip-LUT": a 14-bit lookup table skips offsets
//!   whose first header bits cannot possibly start a Dynamic Block.
//! * [`DynamicBlockFinder`] — the fully optimised rapidgzip finder: skip LUT,
//!   bit-packed precode histogram check, then staged Huffman validity checks,
//!   with per-stage statistics for Table 1.

use rgz_bitio::BitReader;
use rgz_huffman::{classify_code_lengths, CodeCompleteness, HuffmanDecoder};

use crate::BlockFinder;

/// Number of precode symbols (code lengths 0..=18).
const PRECODE_SYMBOLS: usize = 19;

/// Per-filter-stage rejection counters, mirroring Table 1 of the paper.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct FilterStatistics {
    /// Bit positions tested.
    pub tested_positions: u64,
    /// Final-block bit was set.
    pub invalid_final_block: u64,
    /// Block type was not "dynamic".
    pub invalid_compression_type: u64,
    /// The literal/length code count field held 30 or 31.
    pub invalid_precode_size: u64,
    /// The precode histogram was over-subscribed.
    pub invalid_precode_code: u64,
    /// The precode histogram was incomplete (unused leaves).
    pub non_optimal_precode_code: u64,
    /// The precode-encoded code-length data was invalid.
    pub invalid_precode_encoded_data: u64,
    /// The distance code was over-subscribed.
    pub invalid_distance_code: u64,
    /// The distance code was incomplete.
    pub non_optimal_distance_code: u64,
    /// The literal code was over-subscribed.
    pub invalid_literal_code: u64,
    /// The literal code was incomplete.
    pub non_optimal_literal_code: u64,
    /// Offsets that passed every check.
    pub valid_headers: u64,
}

impl FilterStatistics {
    /// Sum of all rejection counters plus valid headers; equals
    /// `tested_positions` after a full scan.
    pub fn total_classified(&self) -> u64 {
        self.invalid_final_block
            + self.invalid_compression_type
            + self.invalid_precode_size
            + self.invalid_precode_code
            + self.non_optimal_precode_code
            + self.invalid_precode_encoded_data
            + self.invalid_distance_code
            + self.non_optimal_distance_code
            + self.invalid_literal_code
            + self.non_optimal_literal_code
            + self.valid_headers
    }

    /// Table rows in the paper's order, as (label, count) pairs.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("Tested bit positions", self.tested_positions),
            ("Invalid final block", self.invalid_final_block),
            ("Invalid compression type", self.invalid_compression_type),
            ("Invalid Precode size", self.invalid_precode_size),
            ("Invalid Precode code", self.invalid_precode_code),
            ("Non-optimal Precode code", self.non_optimal_precode_code),
            (
                "Invalid Precode-encoded data",
                self.invalid_precode_encoded_data,
            ),
            ("Invalid distance code", self.invalid_distance_code),
            ("Non-optimal distance code", self.non_optimal_distance_code),
            ("Invalid literal code", self.invalid_literal_code),
            ("Non-optimal literal code", self.non_optimal_literal_code),
            ("Valid Deflate headers", self.valid_headers),
        ]
    }
}

/// Why a single offset was rejected (or not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HeaderCheck {
    InvalidFinalBlock,
    InvalidCompressionType,
    InvalidPrecodeSize,
    InvalidPrecodeCode,
    NonOptimalPrecodeCode,
    InvalidPrecodeData,
    InvalidDistanceCode,
    NonOptimalDistanceCode,
    InvalidLiteralCode,
    NonOptimalLiteralCode,
    Valid,
}

impl HeaderCheck {
    fn record(self, stats: &mut FilterStatistics) {
        match self {
            HeaderCheck::InvalidFinalBlock => stats.invalid_final_block += 1,
            HeaderCheck::InvalidCompressionType => stats.invalid_compression_type += 1,
            HeaderCheck::InvalidPrecodeSize => stats.invalid_precode_size += 1,
            HeaderCheck::InvalidPrecodeCode => stats.invalid_precode_code += 1,
            HeaderCheck::NonOptimalPrecodeCode => stats.non_optimal_precode_code += 1,
            HeaderCheck::InvalidPrecodeData => stats.invalid_precode_encoded_data += 1,
            HeaderCheck::InvalidDistanceCode => stats.invalid_distance_code += 1,
            HeaderCheck::NonOptimalDistanceCode => stats.non_optimal_distance_code += 1,
            HeaderCheck::InvalidLiteralCode => stats.invalid_literal_code += 1,
            HeaderCheck::NonOptimalLiteralCode => stats.non_optimal_literal_code += 1,
            HeaderCheck::Valid => stats.valid_headers += 1,
        }
    }
}

/// Classifies a candidate Dynamic Block header starting at `offset`,
/// performing the checks in the cheap-to-expensive order the paper lists.
fn check_dynamic_header(data: &[u8], offset: u64) -> HeaderCheck {
    let mut reader = BitReader::new(data);
    if reader.seek_to_bit(offset).is_err() {
        return HeaderCheck::InvalidFinalBlock;
    }
    // (1) final-block bit must be 0, (2) block type must be 0b10.
    let Ok(header) = reader.read(3) else {
        return HeaderCheck::InvalidFinalBlock;
    };
    if header & 1 != 0 {
        return HeaderCheck::InvalidFinalBlock;
    }
    if (header >> 1) != 0b10 {
        return HeaderCheck::InvalidCompressionType;
    }
    // (3) number of literal codes must not be 286 or 287.
    let Ok(hlit) = reader.read(5) else {
        return HeaderCheck::InvalidPrecodeSize;
    };
    if hlit >= 30 {
        return HeaderCheck::InvalidPrecodeSize;
    }
    let Ok(_hdist) = reader.read(5) else {
        return HeaderCheck::InvalidPrecodeSize;
    };
    let Ok(hclen) = reader.read(4) else {
        return HeaderCheck::InvalidPrecodeSize;
    };
    let precode_count = hclen as usize + 4;

    // (4) the precode must be a valid and efficient Huffman code.  The check
    // runs on a bit-packed histogram of the code lengths (5 bits per length)
    // so that over-subscription can be detected with a handful of integer
    // operations, as described in §3.4.2.
    let mut histogram = 0u64;
    let mut non_zero = 0u32;
    for _ in 0..precode_count {
        let Ok(length) = reader.read(3) else {
            return HeaderCheck::InvalidPrecodeCode;
        };
        if length != 0 {
            histogram += 1 << (5 * (length - 1));
            non_zero += 1;
        }
    }
    if non_zero == 0 {
        return HeaderCheck::InvalidPrecodeCode;
    }
    match classify_packed_histogram(histogram, non_zero) {
        CodeCompleteness::Oversubscribed => return HeaderCheck::InvalidPrecodeCode,
        CodeCompleteness::Incomplete if non_zero > 1 => return HeaderCheck::NonOptimalPrecodeCode,
        _ => {}
    }

    // (5) the precode-encoded code lengths must be structurally valid.
    // Re-read the precode lengths to build the actual decoder (duplicate work
    // that only happens for the roughly 1-in-10^4 offsets that got this far).
    let mut reader = BitReader::new(data);
    reader.seek_to_bit(offset + 3 + 5 + 5 + 4).ok();
    let mut precode_lengths = [0u8; PRECODE_SYMBOLS];
    for &position in rgz_deflate::constants::PRECODE_ORDER
        .iter()
        .take(precode_count)
    {
        let Ok(length) = reader.read(3) else {
            return HeaderCheck::InvalidPrecodeCode;
        };
        precode_lengths[position] = length as u8;
    }
    let Ok(precode) = HuffmanDecoder::from_code_lengths(&precode_lengths) else {
        return HeaderCheck::InvalidPrecodeCode;
    };
    let literal_count = hlit as usize + 257;
    let distance_count = _hdist as usize + 1;
    let total = literal_count + distance_count;
    let mut lengths: Vec<u8> = Vec::with_capacity(total);
    while lengths.len() < total {
        let Ok(symbol) = precode.decode(&mut reader) else {
            return HeaderCheck::InvalidPrecodeData;
        };
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let Some(&previous) = lengths.last() else {
                    return HeaderCheck::InvalidPrecodeData;
                };
                let Ok(repeat) = reader.read(2) else {
                    return HeaderCheck::InvalidPrecodeData;
                };
                let repeat = repeat as usize + 3;
                if lengths.len() + repeat > total {
                    return HeaderCheck::InvalidPrecodeData;
                }
                lengths.extend(std::iter::repeat_n(previous, repeat));
            }
            17 | 18 => {
                let (bits, base) = if symbol == 17 { (2 + 1, 3) } else { (7, 11) };
                let Ok(repeat) = reader.read(bits) else {
                    return HeaderCheck::InvalidPrecodeData;
                };
                let repeat = repeat as usize + base;
                if lengths.len() + repeat > total {
                    return HeaderCheck::InvalidPrecodeData;
                }
                lengths.extend(std::iter::repeat_n(0u8, repeat));
            }
            _ => return HeaderCheck::InvalidPrecodeData,
        }
    }
    let (literal_lengths, distance_lengths) = lengths.split_at(literal_count);

    // (6) the distance code must be valid and efficient.
    let distance_used = distance_lengths.iter().filter(|&&l| l > 0).count();
    match classify_code_lengths(distance_lengths) {
        CodeCompleteness::Oversubscribed => return HeaderCheck::InvalidDistanceCode,
        CodeCompleteness::Incomplete if distance_used > 1 => {
            return HeaderCheck::NonOptimalDistanceCode
        }
        _ => {}
    }
    // (7) the literal code must be valid and efficient.
    match classify_code_lengths(literal_lengths) {
        CodeCompleteness::Oversubscribed => return HeaderCheck::InvalidLiteralCode,
        CodeCompleteness::Incomplete | CodeCompleteness::Empty => {
            return HeaderCheck::NonOptimalLiteralCode
        }
        CodeCompleteness::Complete => {}
    }
    HeaderCheck::Valid
}

/// Kraft check on a histogram packed as 5 bits per code length (lengths
/// 1..=7, matching the precode's maximum length).
fn classify_packed_histogram(histogram: u64, non_zero: u32) -> CodeCompleteness {
    if non_zero == 0 {
        return CodeCompleteness::Empty;
    }
    // Unused leaves at depth d: start with 2 at depth 1 and descend.
    let mut unused: i64 = 2;
    for length in 1..=7u32 {
        let count = ((histogram >> (5 * (length - 1))) & 0x1F) as i64;
        unused -= count;
        if unused < 0 {
            return CodeCompleteness::Oversubscribed;
        }
        unused *= 2;
    }
    if unused == 0 {
        CodeCompleteness::Complete
    } else if non_zero == 1 && unused == (2 << 6) - 2 {
        // Single length-1 code: incomplete but allowed.
        CodeCompleteness::Incomplete
    } else {
        CodeCompleteness::Incomplete
    }
}

/// Up to 57 bits starting at bit offset `bit`, read with one unaligned
/// little-endian load (DEFLATE's LSB-first order makes stream bit
/// `8·byte + i` word bit `i`).  Bits past the end of `data` read as zero; the
/// caller bounds-checks against `total_bits` before trusting them.
#[inline]
fn peek_bits_raw(data: &[u8], bit: u64, count: u32) -> u64 {
    debug_assert!(count <= 57);
    let byte = (bit / 8) as usize;
    let mut buffer = [0u8; 8];
    let take = (data.len() - byte.min(data.len())).min(8);
    buffer[..take].copy_from_slice(&data[byte..byte + take]);
    (u64::from_le_bytes(buffer) >> (bit % 8)) & rgz_bitio::low_bit_mask(count)
}

/// Cheap raw-load replica of [`check_dynamic_header`]'s precode stage (steps
/// 3–4): HCLEN, the 3-bit precode lengths in one 57-bit peek, and the packed
/// Kraft histogram — without constructing a [`BitReader`].  Returns `false`
/// only for offsets the precise check would reject too, so the bulk scan can
/// discard the ~3% of positions that survive the header-bit masks without
/// paying for a seek; the precise check still owns the final verdict.
#[inline]
fn precode_prefilter(data: &[u8], offset: u64, total_bits: u64) -> bool {
    let precode_count = peek_bits_raw(data, offset + 13, 4) + 4;
    if offset + 17 + 3 * precode_count > total_bits {
        // Truncated header: the precise check fails reading these bits.
        return false;
    }
    let mut bits = peek_bits_raw(data, offset + 17, 3 * precode_count as u32);
    let mut histogram = 0u64;
    let mut non_zero = 0u32;
    for _ in 0..precode_count {
        let length = bits & 0b111;
        bits >>= 3;
        if length != 0 {
            histogram += 1 << (5 * (length - 1));
            non_zero += 1;
        }
    }
    if non_zero == 0 {
        return false;
    }
    match classify_packed_histogram(histogram, non_zero) {
        CodeCompleteness::Oversubscribed => false,
        CodeCompleteness::Incomplete if non_zero > 1 => false,
        _ => true,
    }
}

// --- skip LUT ---------------------------------------------------------------

/// Number of header bits the skip LUT inspects per position.  The first 13
/// bits of a Dynamic Block header (BFINAL + BTYPE + HLIT) are checked at up
/// to 6 consecutive positions per table lookup.
const SKIP_LUT_BITS: u32 = 18;

/// For each 13-bit window, the number of bit positions that can be skipped
/// because no position inside the window passes the first three checks
/// (final-block bit, block type, literal-code count).
fn build_skip_table() -> Vec<u8> {
    let window_positions = SKIP_LUT_BITS - 13 + 1; // header needs 13 bits: 3 + 5 + 5
    let mut table = vec![0u8; 1 << SKIP_LUT_BITS];
    for (window, entry) in table.iter_mut().enumerate() {
        let mut skip = window_positions as u8; // conservative default
        for position in 0..window_positions {
            let bits = (window as u32) >> position;
            let final_block = bits & 1;
            let block_type = (bits >> 1) & 0b11;
            let hlit = (bits >> 3) & 0b1_1111;
            if final_block == 0 && block_type == 0b10 && hlit < 30 {
                skip = position as u8;
                break;
            }
        }
        *entry = skip;
    }
    table
}

fn skip_table() -> &'static [u8] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u8>> = OnceLock::new();
    TABLE.get_or_init(build_skip_table)
}

// --- finder variants ---------------------------------------------------------

/// "DBF zlib" variant: attempt a full (two-stage) decode at every offset and
/// accept the first offset where decoding succeeds. Slowest by far.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrialInflateFinder;

impl BlockFinder for TrialInflateFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        let total_bits = data.len() as u64 * 8;
        let mut offset = start_bit;
        while offset + 13 <= total_bits {
            let mut probe = BitReader::new(data);
            probe.seek_to_bit(offset).ok()?;
            // Only accept non-final Dynamic Blocks, as the real finder does.
            if probe.peek(3) == 0b100 {
                let mut out = Vec::new();
                let stop_after_first_block = offset + 1;
                if rgz_deflate::inflate_two_stage(&mut probe, &mut out, stop_after_first_block)
                    .map(|outcome| !outcome.blocks.is_empty())
                    .unwrap_or(false)
                {
                    return Some(offset);
                }
            }
            offset += 1;
        }
        None
    }
}

/// "DBF custom deflate" variant: parse the header with early exits but
/// without the skip LUT or the packed histogram check.
#[derive(Debug, Default, Clone, Copy)]
pub struct CustomParseFinder;

impl BlockFinder for CustomParseFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        let total_bits = data.len() as u64 * 8;
        let mut offset = start_bit;
        while offset + 13 <= total_bits {
            if check_dynamic_header(data, offset) == HeaderCheck::Valid {
                return Some(offset);
            }
            offset += 1;
        }
        None
    }
}

/// "DBF skip-LUT" variant: like [`CustomParseFinder`] but with the 13-bit
/// skip table filtering positions before the expensive checks run.
#[derive(Debug, Default, Clone, Copy)]
pub struct SkipLutFinder;

impl BlockFinder for SkipLutFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        DynamicBlockFinder::new().find_next_internal(data, start_bit, None)
    }
}

/// Name of the candidate-scan kernel [`DynamicBlockFinder::find_next`]
/// resolves to on this machine: `"swar64"` (bulk 64-position prefilter) or
/// `"lut"` (per-position skip-LUT walk, forced by `RGZ_FORCE_SCALAR`).
pub fn active_isa() -> &'static str {
    if rgz_bitio::scalar_forced() {
        "lut"
    } else {
        "swar64"
    }
}

/// The fully optimised Dynamic Block finder used by the parallel decompressor.
#[derive(Debug, Default, Clone, Copy)]
pub struct DynamicBlockFinder;

impl DynamicBlockFinder {
    /// Creates a finder.
    pub fn new() -> Self {
        Self
    }

    /// Bulk candidate prefilter: classifies 56 bit positions per 64-bit load
    /// with a handful of shifts/ANDs (SWAR), then runs the precise header
    /// check only on surviving candidates.
    ///
    /// A position `i` survives iff the three cheap header checks pass — the
    /// same criterion the skip LUT encodes:
    ///
    /// * final-block bit clear — `!w`,
    /// * block type `0b10` (bits `i+1`, `i+2` = 0, 1) — `!(w >> 1) & (w >> 2)`,
    /// * HLIT < 30 — HLIT ≥ 30 iff its four high bits (`i+4..=i+7`) are all
    ///   set, so survivors need `!((w>>4) & (w>>5) & (w>>6) & (w>>7))`.
    ///
    /// On random data ~3.1% of positions survive (1/2 · 1/4 · 30/32 from the
    /// three masks), so the per-position [`check_dynamic_header`] cost is paid
    /// rarely; everything else is 8 bytes per ~9 ALU ops.  DEFLATE's LSB-first
    /// bit order makes a little-endian `u64` load line stream bit `8·byte + i`
    /// up with word bit `i`, which is what lets plain integer shifts stand in
    /// for per-position bit extraction.  Windows advance 7 bytes (56 bits), so
    /// each keeps the 8 lookahead bits that position 55's HLIT field needs.
    fn find_next_swar(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        let total_bits = data.len() as u64 * 8;
        if start_bit + 13 > total_bits {
            return None;
        }
        let mut byte = (start_bit / 8) as usize;
        while byte + 8 <= data.len() {
            let window = u64::from_le_bytes(data[byte..byte + 8].try_into().unwrap());
            let base = byte as u64 * 8;
            let hlit_overflow = (window >> 4) & (window >> 5) & (window >> 6) & (window >> 7);
            let mut candidates =
                !window & !(window >> 1) & (window >> 2) & !hlit_overflow & 0x00FF_FFFF_FFFF_FFFF;
            if start_bit > base {
                // First window only: drop positions before the start bit.
                candidates &= u64::MAX << (start_bit - base);
            }
            while candidates != 0 {
                let offset = base + candidates.trailing_zeros() as u64;
                if offset + 13 > total_bits {
                    return None;
                }
                if precode_prefilter(data, offset, total_bits)
                    && check_dynamic_header(data, offset) == HeaderCheck::Valid
                {
                    return Some(offset);
                }
                candidates &= candidates - 1;
            }
            byte += 7;
        }
        // Fewer than 8 bytes left: finish with the per-position walk.
        let mut offset = (byte as u64 * 8).max(start_bit);
        while offset + 13 <= total_bits {
            if check_dynamic_header(data, offset) == HeaderCheck::Valid {
                return Some(offset);
            }
            offset += 1;
        }
        None
    }

    /// Finds the next candidate and updates per-stage statistics (used by the
    /// Table 1 harness).
    pub fn find_next_with_statistics(
        &self,
        data: &[u8],
        start_bit: u64,
        statistics: &mut FilterStatistics,
    ) -> Option<u64> {
        self.find_next_internal(data, start_bit, Some(statistics))
    }

    fn find_next_internal(
        &self,
        data: &[u8],
        start_bit: u64,
        mut statistics: Option<&mut FilterStatistics>,
    ) -> Option<u64> {
        let total_bits = data.len() as u64 * 8;
        if total_bits < 13 {
            return None;
        }
        let table = skip_table();
        let mut reader = BitReader::new(data);
        let mut offset = start_bit;
        while offset + 13 <= total_bits {
            reader.seek_to_bit(offset).ok()?;
            let window = reader.peek(SKIP_LUT_BITS) as usize;
            let skip = table[window];
            if skip > 0 {
                if let Some(stats) = statistics.as_deref_mut() {
                    // The LUT only skips positions failing the first three
                    // checks; attribute them for Table 1 bookkeeping.
                    for position in 0..skip as u64 {
                        if offset + position + 13 > total_bits {
                            break;
                        }
                        stats.tested_positions += 1;
                        let bits = (window as u64) >> position;
                        if bits & 1 != 0 {
                            stats.invalid_final_block += 1;
                        } else if (bits >> 1) & 0b11 != 0b10 {
                            stats.invalid_compression_type += 1;
                        } else {
                            stats.invalid_precode_size += 1;
                        }
                    }
                }
                offset += skip as u64;
                continue;
            }
            let check = check_dynamic_header(data, offset);
            if let Some(stats) = statistics.as_deref_mut() {
                stats.tested_positions += 1;
                check.record(stats);
            }
            if check == HeaderCheck::Valid {
                return Some(offset);
            }
            offset += 1;
        }
        None
    }
}

impl BlockFinder for DynamicBlockFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        // The statistics path keeps the skip-LUT walk (it attributes every
        // skipped position exactly); the plain search takes the bulk
        // prefilter, which visits the same candidates in the same order.
        if rgz_bitio::scalar_forced() {
            self.find_next_internal(data, start_bit, None)
        } else {
            self.find_next_swar(data, start_bit)
        }
    }
}

/// A pugz-style finder: header checks plus a probe decode that requires the
/// first literals to be printable ASCII (bytes 9–126), the restriction that
/// prevents pugz from handling arbitrary files.
#[derive(Debug, Clone, Copy)]
pub struct PugzLikeFinder {
    /// How many decoded literals to inspect.
    pub probe_symbols: usize,
}

impl Default for PugzLikeFinder {
    fn default() -> Self {
        Self { probe_symbols: 512 }
    }
}

impl PugzLikeFinder {
    /// Returns true if `byte` is in the range pugz accepts.
    pub fn is_allowed_byte(byte: u8) -> bool {
        (9..=126).contains(&byte)
    }
}

impl BlockFinder for PugzLikeFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        let finder = DynamicBlockFinder::new();
        let mut offset = start_bit;
        loop {
            let candidate = finder.find_next(data, offset)?;
            // Probe-decode a little data and check the ASCII restriction.
            let mut reader = BitReader::new(data);
            reader.seek_to_bit(candidate).ok()?;
            let mut symbols = Vec::new();
            let probe = rgz_deflate::inflate_two_stage(&mut reader, &mut symbols, candidate + 1);
            let acceptable = match probe {
                Ok(_) | Err(_) => symbols
                    .iter()
                    .take(self.probe_symbols)
                    .all(|&s| s >= 256 || Self::is_allowed_byte(s as u8)),
            };
            if acceptable && !symbols.is_empty() {
                return Some(candidate);
            }
            offset = candidate + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rgz_deflate::{CompressorOptions, DeflateCompressor};

    fn text_corpus() -> Vec<u8> {
        let mut data = Vec::new();
        for i in 0..150_000u32 {
            data.extend_from_slice(
                format!("line {:05}: the quick brown fox\n", i % 2500).as_bytes(),
            );
        }
        data
    }

    fn compressed_with_blocks() -> (Vec<u8>, Vec<u64>) {
        let data = text_corpus();
        let compressed = DeflateCompressor::new(CompressorOptions {
            block_size: 32 * 1024,
            ..Default::default()
        })
        .compress(&data);
        let mut reader = BitReader::new(&compressed);
        let mut out = Vec::new();
        let outcome = rgz_deflate::inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        let offsets = outcome
            .blocks
            .iter()
            .filter(|b| b.block_type == rgz_deflate::BlockType::Dynamic && !b.is_final)
            .map(|b| b.bit_offset)
            .collect();
        (compressed, offsets)
    }

    #[test]
    fn packed_histogram_matches_reference_classifier() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let count = rng.gen_range(1..=19usize);
            let lengths: Vec<u8> = (0..count).map(|_| rng.gen_range(0..=7u8)).collect();
            let non_zero = lengths.iter().filter(|&&l| l > 0).count() as u32;
            if non_zero == 0 {
                continue;
            }
            let mut histogram = 0u64;
            for &l in &lengths {
                if l > 0 {
                    histogram += 1 << (5 * (l as u64 - 1));
                }
            }
            // The reference classifier uses a 15-bit Kraft sum; for lengths
            // <= 7 both must agree on over-subscribed vs complete vs
            // incomplete.
            let reference = classify_code_lengths(&lengths);
            let packed = classify_packed_histogram(histogram, non_zero);
            assert_eq!(reference, packed, "lengths {lengths:?}");
        }
    }

    #[test]
    fn all_variants_find_real_blocks() {
        let (compressed, offsets) = compressed_with_blocks();
        assert!(
            offsets.len() >= 3,
            "fixture must contain several dynamic blocks"
        );
        let target = offsets[1];
        let start = target.saturating_sub(40);

        let optimized = DynamicBlockFinder::new();
        let custom = CustomParseFinder;
        let skip = SkipLutFinder;

        for finder in [&optimized as &dyn BlockFinder, &custom, &skip] {
            let mut offset = start;
            let mut found = None;
            while let Some(candidate) = finder.find_next(&compressed, offset) {
                if candidate >= target {
                    found = Some(candidate);
                    break;
                }
                offset = candidate + 1;
            }
            assert_eq!(found, Some(target));
        }
    }

    /// All offsets a finder reports over the whole input, via repeated
    /// `find_next` calls through the given entry point.
    fn collect_all(
        data: &[u8],
        start: u64,
        mut next: impl FnMut(&[u8], u64) -> Option<u64>,
    ) -> Vec<u64> {
        let mut offsets = Vec::new();
        let mut cursor = start;
        while let Some(found) = next(data, cursor) {
            offsets.push(found);
            cursor = found + 1;
        }
        offsets
    }

    #[test]
    fn swar_active_isa_names_a_known_kernel() {
        assert!(["swar64", "lut"].contains(&active_isa()));
    }

    #[test]
    fn swar_and_lut_walks_agree_on_random_data_and_real_blocks() {
        let finder = DynamicBlockFinder::new();
        let mut rng = StdRng::seed_from_u64(42);
        let random: Vec<u8> = (0..128 * 1024).map(|_| rng.gen()).collect();
        let (compressed, offsets) = compressed_with_blocks();
        for corpus in [&random[..], &compressed[..]] {
            let swar = collect_all(corpus, 0, |d, s| finder.find_next_swar(d, s));
            let lut = collect_all(corpus, 0, |d, s| finder.find_next_internal(d, s, None));
            assert_eq!(swar, lut);
        }
        // The real block offsets are among the SWAR results.
        let swar = collect_all(&compressed, 0, |d, s| finder.find_next_swar(d, s));
        for target in offsets {
            assert!(swar.contains(&target), "missing real block at {target}");
        }
    }

    #[test]
    fn swar_handles_short_inputs_and_unaligned_starts() {
        let finder = DynamicBlockFinder::new();
        let mut rng = StdRng::seed_from_u64(77);
        for length in [0usize, 1, 2, 7, 8, 9, 15, 16, 40] {
            let data: Vec<u8> = (0..length).map(|_| rng.gen()).collect();
            for start in 0..(length as u64 * 8).min(70) {
                assert_eq!(
                    finder.find_next_swar(&data, start),
                    finder.find_next_internal(&data, start, None),
                    "length {length} start {start}"
                );
            }
        }
    }

    proptest::proptest! {
        // Differential: the SWAR bulk prefilter and the skip-LUT walk must
        // report identical offsets from any start bit on arbitrary bytes —
        // including window-straddling headers and tails shorter than a load.
        #[test]
        fn swar_prefilter_matches_lut_walk(
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..2048),
            start in 0u64..2048 * 8 + 16,
        ) {
            let finder = DynamicBlockFinder::new();
            proptest::prop_assert_eq!(
                collect_all(&data, start, |d, s| finder.find_next_swar(d, s)),
                collect_all(&data, start, |d, s| finder.find_next_internal(d, s, None))
            );
        }
    }

    #[test]
    fn optimized_and_custom_parse_agree_on_random_data() {
        let mut rng = StdRng::seed_from_u64(99);
        let data: Vec<u8> = (0..64 * 1024).map(|_| rng.gen()).collect();
        let optimized = DynamicBlockFinder::new();
        let custom = CustomParseFinder;
        let mut offset = 0u64;
        for _ in 0..20 {
            let a = optimized.find_next(&data, offset);
            let b = custom.find_next(&data, offset);
            assert_eq!(a, b);
            match a {
                Some(next) => offset = next + 1,
                None => break,
            }
        }
    }

    #[test]
    fn statistics_are_consistent_and_dominated_by_cheap_filters() {
        let mut rng = StdRng::seed_from_u64(1234);
        let data: Vec<u8> = (0..256 * 1024).map(|_| rng.gen()).collect();
        let finder = DynamicBlockFinder::new();
        let mut statistics = FilterStatistics::default();
        let mut offset = 0u64;
        while let Some(found) = finder.find_next_with_statistics(&data, offset, &mut statistics) {
            offset = found + 1;
        }
        assert_eq!(statistics.total_classified(), statistics.tested_positions);
        // Table 1: roughly half of all positions fail the final-block check
        // and a further ~3/8 fail the compression-type check.
        let half = statistics.tested_positions / 2;
        assert!(statistics.invalid_final_block > half * 9 / 10);
        assert!(statistics.invalid_compression_type > statistics.tested_positions / 3);
        // Expensive checks only see a tiny fraction of positions.
        assert!(statistics.invalid_precode_encoded_data < statistics.tested_positions / 1000);
        assert!(statistics.rows().len() == 12);
    }

    #[test]
    fn false_positive_rate_on_random_data_is_small() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<u8> = (0..512 * 1024).map(|_| rng.gen()).collect();
        let finder = DynamicBlockFinder::new();
        let mut count = 0u64;
        let mut offset = 0u64;
        while let Some(found) = finder.find_next(&data, offset) {
            count += 1;
            offset = found + 1;
        }
        // Table 1 reports ~200 valid headers per 10^12 positions; on 4 Mibit
        // essentially none should pass, but tolerate a handful.
        assert!(count < 20, "too many false positives: {count}");
    }

    #[test]
    fn pugz_finder_only_accepts_ascii_content() {
        // ASCII corpus: the pugz-like finder must find block starts.
        let (compressed, offsets) = compressed_with_blocks();
        let pugz = PugzLikeFinder::default();
        let target = offsets[1];
        let mut offset = target.saturating_sub(40);
        let mut found = None;
        while let Some(candidate) = pugz.find_next(&compressed, offset) {
            if candidate >= target {
                found = Some(candidate);
                break;
            }
            offset = candidate + 1;
        }
        assert_eq!(found, Some(target));

        // Binary corpus: every literal byte is outside 9..=126 somewhere, so
        // probing rejects the real block starts.
        let mut rng = StdRng::seed_from_u64(7);
        let binary: Vec<u8> = (0..100_000).map(|_| rng.gen_range(128..=255u8)).collect();
        let compressed_binary = DeflateCompressor::new(CompressorOptions {
            block_size: 16 * 1024,
            force_dynamic: true,
            ..Default::default()
        })
        .compress(&binary);
        let mut reader = BitReader::new(&compressed_binary);
        let mut out = Vec::new();
        let outcome = rgz_deflate::inflate(&mut reader, &[], &mut out, u64::MAX).unwrap();
        let real_offset = outcome.blocks[1].bit_offset;
        // The optimised finder accepts the block; the pugz-like finder must
        // not accept this exact offset.
        let optimized_hit = {
            let mut offset = real_offset;
            DynamicBlockFinder::new()
                .find_next(&compressed_binary, offset)
                .inspect(|&o| {
                    offset = o;
                })
        };
        assert_eq!(optimized_hit, Some(real_offset));
        let pugz_hit = PugzLikeFinder::default().find_next(&compressed_binary, real_offset);
        assert_ne!(pugz_hit, Some(real_offset));
    }

    #[test]
    fn is_allowed_byte_matches_pugz_range() {
        assert!(PugzLikeFinder::is_allowed_byte(b'\t'));
        assert!(PugzLikeFinder::is_allowed_byte(b'a'));
        assert!(PugzLikeFinder::is_allowed_byte(126));
        assert!(!PugzLikeFinder::is_allowed_byte(8));
        assert!(!PugzLikeFinder::is_allowed_byte(127));
        assert!(!PugzLikeFinder::is_allowed_byte(200));
    }
}
