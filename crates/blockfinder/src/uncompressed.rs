//! Finder for Non-Compressed (stored) DEFLATE blocks (§3.4.1).
//!
//! A stored block header ends with a byte-aligned pair of 16-bit length and
//! one's-complement length fields.  The finder scans byte positions, checks
//! the LEN/NLEN pair, and additionally requires the final-block bit, the two
//! block-type bits and the alignment padding (all of which sit in the high
//! bits of the preceding byte) to be zero, which reduces the false-positive
//! rate from once per 64 KiB to roughly once per 512 KiB of random data.

use crate::BlockFinder;

/// Finder for Non-Compressed Blocks.
#[derive(Debug, Default, Clone, Copy)]
pub struct UncompressedBlockFinder;

impl UncompressedBlockFinder {
    /// Creates a finder.
    pub fn new() -> Self {
        Self
    }

    /// Scans for the next candidate and returns the bit offset of the
    /// final-block bit (assuming zero-length padding; stored-block offsets
    /// are inherently ambiguous, see the paper).
    pub fn find_next_offset(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        if data.len() < 5 {
            return None;
        }
        // The candidate header occupies the high 3 bits of byte `b` and the
        // LEN/NLEN pair occupies bytes `b + 1 .. b + 5`.  The earliest byte
        // whose header bits lie at or after `start_bit` is derived from the
        // bit offset of the final-block bit: (b * 8) + 5 >= start_bit.
        let mut header_byte = (start_bit.saturating_add(2) / 8) as usize;
        if (header_byte as u64) * 8 + 5 < start_bit {
            header_byte += 1;
        }
        while header_byte + 5 <= data.len().saturating_sub(0) && header_byte + 4 < data.len() {
            let header = data[header_byte];
            // Final-block bit, both block-type bits and the padding must be 0.
            if header >> 5 == 0 {
                let length = u16::from_le_bytes([data[header_byte + 1], data[header_byte + 2]]);
                let complement = u16::from_le_bytes([data[header_byte + 3], data[header_byte + 4]]);
                if length == !complement {
                    return Some(header_byte as u64 * 8 + 5);
                }
            }
            header_byte += 1;
        }
        None
    }
}

impl BlockFinder for UncompressedBlockFinder {
    fn find_next(&self, data: &[u8], start_bit: u64) -> Option<u64> {
        self.find_next_offset(data, start_bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rgz_bitio::{BitReader, BitWriter};
    use rgz_deflate::write_stored_block;

    #[test]
    fn finds_a_stored_block_after_garbage() {
        let mut writer = BitWriter::new();
        // Some non-zero leading bits that cannot be misread as a candidate.
        writer.write_bits(0xFFFF_FFFF, 32);
        writer.write_bits(0b111, 3);
        write_stored_block(&mut writer, b"stored payload", false);
        writer.write_bits(0x5555, 16);
        let bytes = writer.finish();

        let finder = UncompressedBlockFinder::new();
        let offset = finder
            .find_next(&bytes, 0)
            .expect("must find the stored block");
        // Decoding from the found offset must yield the stored payload.
        let mut reader = BitReader::new(&bytes);
        reader.seek_to_bit(offset).unwrap();
        let mut out = Vec::new();
        let outcome = rgz_deflate::inflate(&mut reader, &[], &mut out, offset + 1);
        // Only one block is decoded (the next "block" is garbage), so allow
        // an error after the first block; the payload must still be there.
        match outcome {
            Ok(_) | Err(_) => assert!(out.starts_with(b"stored payload")),
        }
    }

    #[test]
    fn respects_the_start_offset() {
        let mut writer = BitWriter::new();
        write_stored_block(&mut writer, b"first", false);
        write_stored_block(&mut writer, b"second", false);
        let bytes = writer.finish();
        let finder = UncompressedBlockFinder::new();
        let first = finder.find_next(&bytes, 0).unwrap();
        let second = finder.find_next(&bytes, first + 1).unwrap();
        assert!(second > first);
        let mut reader = BitReader::new(&bytes);
        reader.seek_to_bit(second).unwrap();
        let mut out = Vec::new();
        let _ = rgz_deflate::inflate(&mut reader, &[], &mut out, second + 1);
        assert!(out.starts_with(b"second"));
    }

    #[test]
    fn empty_and_tiny_inputs_yield_nothing() {
        let finder = UncompressedBlockFinder::new();
        assert_eq!(finder.find_next(&[], 0), None);
        assert_eq!(finder.find_next(&[0u8; 4], 0), None);
    }

    #[test]
    fn false_positive_rate_on_random_data_is_about_once_per_512_kib() {
        // The paper reports (514 ± 23) KiB per false positive on random data
        // (§3.4.1). Verify we are within a factor of two of that.
        let mut rng = StdRng::seed_from_u64(0xB10C);
        let data: Vec<u8> = (0..4 * 1024 * 1024).map(|_| rng.gen()).collect();
        let finder = UncompressedBlockFinder::new();
        let mut count = 0u64;
        let mut offset = 0u64;
        while let Some(found) = finder.find_next(&data, offset) {
            count += 1;
            offset = found + 1;
        }
        let kib_per_false_positive = (data.len() as f64 / 1024.0) / count.max(1) as f64;
        assert!(
            (256.0..=1024.0).contains(&kib_per_false_positive),
            "false positive spacing {kib_per_false_positive} KiB is out of range"
        );
    }
}
