//! Deterministic workload generators for tests, examples and benchmarks.
//!
//! The paper evaluates on three kinds of data, none of which can be shipped
//! with this repository, so each has a synthetic stand-in with matched
//! statistics (see DESIGN.md):
//!
//! * [`base64_random`] — base64-encoded random data (§4.4): compression ratio
//!   ≈ 1.3, essentially no back-references, uniform compressibility.
//! * [`silesia_like`] — a mixed text/binary/redundant corpus standing in for
//!   the Silesia corpus (§4.5): ratio ≈ 3 with many back-references.
//! * [`fastq_records`] — synthetic FASTQ sequencing records (§4.6).
//!
//! A minimal ustar TAR writer ([`tar_archive`]) is included because the
//! paper's motivating use case (ratarmount) is random access into
//! gzip-compressed TAR archives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Generates `length` bytes of base64-encoded random data (including newlines
/// every 76 characters, like the `base64` command-line tool).
pub fn base64_random(length: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00BA_5E64);
    let mut out = Vec::with_capacity(length + 80);
    let mut column = 0usize;
    while out.len() < length {
        out.push(BASE64_ALPHABET[rng.gen_range(0..64)]);
        column += 1;
        if column == 76 {
            out.push(b'\n');
            column = 0;
        }
    }
    out.truncate(length);
    out
}

/// Words used by the text portion of the Silesia-like corpus.
const WORDS: &[&str] = &[
    "the",
    "quick",
    "brown",
    "fox",
    "jumps",
    "over",
    "lazy",
    "dog",
    "compression",
    "dictionary",
    "window",
    "pointer",
    "stream",
    "archive",
    "corpus",
    "sample",
    "medical",
    "database",
    "record",
    "protein",
    "sequence",
    "chapter",
    "keyword",
    "figure",
    "result",
    "measurement",
    "benchmark",
    "parallel",
    "thread",
    "prefetch",
    "cache",
    "offset",
    "block",
    "huffman",
    "deflate",
];

/// Generates a mixed corpus with characteristics similar to the Silesia
/// corpus: natural-language-like text, structured binary records and highly
/// redundant sections.  Compresses with gzip to a ratio of roughly 3 and
/// produces many back-references, which makes two-stage decompression emit
/// plenty of markers (unlike [`base64_random`]).
pub fn silesia_like(length: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0051_E51A);
    let mut out = Vec::with_capacity(length + 4096);
    while out.len() < length {
        match rng.gen_range(0..10u32) {
            // ~50%: text-like content built from a fixed vocabulary.
            0..=4 => {
                for _ in 0..rng.gen_range(50..200) {
                    out.extend_from_slice(WORDS[rng.gen_range(0..WORDS.len())].as_bytes());
                    out.push(if rng.gen_bool(0.1) { b'\n' } else { b' ' });
                }
            }
            // ~30%: structured binary records (length-prefixed, small alphabet).
            5..=7 => {
                for record in 0..rng.gen_range(20..100u32) {
                    out.extend_from_slice(&(record as u16).to_le_bytes());
                    out.extend_from_slice(&rng.gen_range(0..1_000_000u32).to_le_bytes());
                    let tag = rng.gen_range(0..16u8);
                    out.extend(std::iter::repeat_n(tag, rng.gen_range(4..24)));
                }
            }
            // ~10%: verbatim repetition of earlier content (long matches).
            8 => {
                if out.len() > 1024 {
                    let copy_length = rng.gen_range(256..4096usize).min(out.len());
                    let start = rng.gen_range(0..=out.len() - copy_length);
                    let repeated: Vec<u8> = out[start..start + copy_length].to_vec();
                    out.extend_from_slice(&repeated);
                }
            }
            // ~10%: hard-to-compress noise.
            _ => {
                for _ in 0..rng.gen_range(64..512) {
                    out.push(rng.gen());
                }
            }
        }
    }
    out.truncate(length);
    out
}

/// Generates `records` synthetic FASTQ records (identifier, bases, separator,
/// qualities), the file format pugz was designed for.
pub fn fastq_records(records: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA57);
    let bases = [b'A', b'C', b'G', b'T'];
    let mut out = Vec::with_capacity(records * 200);
    for index in 0..records {
        let read_length = rng.gen_range(80..=120usize);
        out.extend_from_slice(format!("@SRR000001.{} {}/1\n", index + 1, index + 1).as_bytes());
        for _ in 0..read_length {
            out.push(bases[rng.gen_range(0..4)]);
        }
        out.push(b'\n');
        out.extend_from_slice(b"+\n");
        for _ in 0..read_length {
            out.push(rng.gen_range(b'!'..=b'I'));
        }
        out.push(b'\n');
    }
    out
}

/// Generates a FASTQ file of approximately `length` bytes.
pub fn fastq_of_size(length: usize, seed: u64) -> Vec<u8> {
    // A record is ~220 bytes on average.
    let mut data = fastq_records(length / 220 + 1, seed);
    data.truncate(length);
    data
}

/// One file to place in a [`tar_archive`].
#[derive(Debug, Clone)]
pub struct TarEntry {
    /// File name (at most 100 bytes for this minimal ustar writer).
    pub name: String,
    /// File contents.
    pub data: Vec<u8>,
}

/// Writes a minimal ustar TAR archive containing the given entries.
pub fn tar_archive(entries: &[TarEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for entry in entries {
        assert!(entry.name.len() <= 100, "tar entry name too long");
        let mut header = [0u8; 512];
        header[..entry.name.len()].copy_from_slice(entry.name.as_bytes());
        header[100..108].copy_from_slice(b"0000644\0");
        header[108..116].copy_from_slice(b"0000000\0");
        header[116..124].copy_from_slice(b"0000000\0");
        let size_field = format!("{:011o}\0", entry.data.len());
        header[124..136].copy_from_slice(size_field.as_bytes());
        header[136..148].copy_from_slice(b"00000000000\0");
        header[156] = b'0'; // regular file
        header[257..263].copy_from_slice(b"ustar\0");
        header[263..265].copy_from_slice(b"00");
        // Checksum: spaces while computing.
        header[148..156].copy_from_slice(b"        ");
        let checksum: u32 = header.iter().map(|&b| b as u32).sum();
        let checksum_field = format!("{:06o}\0 ", checksum);
        header[148..156].copy_from_slice(checksum_field.as_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(&entry.data);
        let padding = (512 - entry.data.len() % 512) % 512;
        out.extend(std::iter::repeat_n(0u8, padding));
    }
    // Two zero blocks terminate the archive.
    out.extend(std::iter::repeat_n(0u8, 1024));
    out
}

/// Parses the headers of a ustar TAR archive produced by [`tar_archive`] and
/// returns `(name, offset of contents, size)` for every entry.
pub fn tar_entries(archive: &[u8]) -> Vec<(String, usize, usize)> {
    let mut entries = Vec::new();
    let mut offset = 0usize;
    while offset + 512 <= archive.len() {
        let header = &archive[offset..offset + 512];
        if header.iter().all(|&b| b == 0) {
            break;
        }
        let name_end = header.iter().position(|&b| b == 0).unwrap_or(100).min(100);
        let name = String::from_utf8_lossy(&header[..name_end]).to_string();
        let size_text = String::from_utf8_lossy(&header[124..135]);
        let size =
            usize::from_str_radix(size_text.trim_matches(|c: char| c == '\0' || c == ' '), 8)
                .unwrap_or(0);
        entries.push((name, offset + 512, size));
        offset += 512 + size.div_ceil(512) * 512;
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_data_has_the_right_alphabet_and_is_deterministic() {
        let a = base64_random(10_000, 42);
        let b = base64_random(10_000, 42);
        let c = base64_random(10_000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10_000);
        assert!(a
            .iter()
            .all(|&b| b == b'\n' || BASE64_ALPHABET.contains(&b)));
    }

    #[test]
    fn silesia_like_is_deterministic_and_sized() {
        let a = silesia_like(100_000, 7);
        assert_eq!(a.len(), 100_000);
        assert_eq!(a, silesia_like(100_000, 7));
        assert_ne!(a, silesia_like(100_000, 8));
    }

    #[test]
    fn fastq_records_look_like_fastq() {
        let data = fastq_records(100, 1);
        let text = String::from_utf8(data).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 400);
        assert!(lines[0].starts_with('@'));
        assert!(lines[1].bytes().all(|b| b"ACGT".contains(&b)));
        assert_eq!(lines[2], "+");
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(fastq_of_size(50_000, 2).len(), 50_000);
    }

    #[test]
    fn tar_archive_round_trips_entry_metadata() {
        let entries = vec![
            TarEntry {
                name: "a.txt".into(),
                data: b"hello".to_vec(),
            },
            TarEntry {
                name: "dir/b.bin".into(),
                data: vec![0xAB; 1500],
            },
            TarEntry {
                name: "empty".into(),
                data: Vec::new(),
            },
        ];
        let archive = tar_archive(&entries);
        assert_eq!(archive.len() % 512, 0);
        let parsed = tar_entries(&archive);
        assert_eq!(parsed.len(), 3);
        for (entry, (name, offset, size)) in entries.iter().zip(&parsed) {
            assert_eq!(&entry.name, name);
            assert_eq!(entry.data.len(), *size);
            assert_eq!(&archive[*offset..*offset + *size], &entry.data[..]);
        }
    }

    #[test]
    fn generated_corpora_have_expected_compressibility() {
        use rgz_deflate_check::ratio;
        let base64 = base64_random(300_000, 3);
        let silesia = silesia_like(300_000, 3);
        let base64_ratio = ratio(&base64);
        let silesia_ratio = ratio(&silesia);
        // The paper: base64 ≈ 1.315, Silesia ≈ 3.1.
        assert!(
            (1.1..=1.6).contains(&base64_ratio),
            "base64 ratio {base64_ratio}"
        );
        assert!(
            (2.0..=5.0).contains(&silesia_ratio),
            "silesia ratio {silesia_ratio}"
        );
        assert!(silesia_ratio > base64_ratio + 0.5);
    }

    /// Tiny helper module so the compressibility test does not depend on the
    /// full rgz-deflate crate (which would be a dependency cycle for dev
    /// builds); a crude LZ-free entropy estimate is enough to tell the two
    /// corpora apart.
    mod rgz_deflate_check {
        pub fn ratio(data: &[u8]) -> f64 {
            // Estimate compressibility as entropy of byte histogram plus a
            // bonus for repeated 8-grams, roughly tracking what DEFLATE
            // achieves on these generators.
            let mut histogram = [0u64; 256];
            for &byte in data {
                histogram[byte as usize] += 1;
            }
            let total = data.len() as f64;
            let entropy: f64 = histogram
                .iter()
                .filter(|&&count| count > 0)
                .map(|&count| {
                    let p = count as f64 / total;
                    -p * p.log2()
                })
                .sum();
            // Repetition bonus: sample 8-grams and count duplicates.
            let mut seen = std::collections::HashSet::new();
            let mut duplicates = 0u64;
            let mut samples = 0u64;
            let mut index = 0usize;
            while index + 8 <= data.len() {
                samples += 1;
                if !seen.insert(&data[index..index + 8]) {
                    duplicates += 1;
                }
                index += 16;
            }
            let duplicate_fraction = duplicates as f64 / samples.max(1) as f64;
            let effective_bits = entropy * (1.0 - duplicate_fraction) + 0.3;
            8.0 / effective_bits.max(0.5)
        }
    }
}
