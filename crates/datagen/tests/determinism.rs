//! Seeding determinism for the synthetic corpora.
//!
//! The integration suites compare parallel against serial decompression of
//! corpora generated here, so the generators must be bit-identical for a
//! given seed on every platform and in every run. The golden fingerprints
//! below pin the exact output streams; they only change if the generators
//! (or the vendored PRNG) change, which would silently invalidate recorded
//! benchmark comparisons.

use rgz_datagen::{base64_random, fastq_records, silesia_like, tar_archive, TarEntry};

/// FNV-1a over the corpus, cheap and platform-independent.
fn fingerprint(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in data {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[test]
fn same_seed_reproduces_identical_corpora() {
    assert_eq!(base64_random(100_000, 42), base64_random(100_000, 42));
    assert_eq!(silesia_like(100_000, 42), silesia_like(100_000, 42));
    assert_eq!(fastq_records(500, 42), fastq_records(500, 42));
}

#[test]
fn different_seeds_diverge() {
    assert_ne!(base64_random(10_000, 1), base64_random(10_000, 2));
    assert_ne!(silesia_like(10_000, 1), silesia_like(10_000, 2));
    assert_ne!(fastq_records(100, 1), fastq_records(100, 2));
}

#[test]
fn length_is_exact_and_prefixes_are_consistent() {
    // Generating a shorter corpus with the same seed yields a prefix of the
    // longer one for the streaming base64 generator.
    let long = base64_random(50_000, 7);
    let short = base64_random(20_000, 7);
    assert_eq!(long.len(), 50_000);
    assert_eq!(short.len(), 20_000);
    assert_eq!(&long[..20_000], &short[..]);
}

#[test]
fn golden_fingerprints_pin_the_streams() {
    // Computed once from the vendored deterministic PRNG; equal on every
    // platform. An intentional generator change must update these constants.
    assert_eq!(
        fingerprint(&base64_random(1 << 20, 0)),
        GOLDEN_BASE64,
        "base64_random(1 MiB, seed 0) changed"
    );
    assert_eq!(
        fingerprint(&silesia_like(1 << 20, 0)),
        GOLDEN_SILESIA,
        "silesia_like(1 MiB, seed 0) changed"
    );
    assert_eq!(
        fingerprint(&fastq_records(1000, 0)),
        GOLDEN_FASTQ,
        "fastq_records(1000, seed 0) changed"
    );
    let archive = tar_archive(&[
        TarEntry {
            name: "a.txt".into(),
            data: base64_random(10_000, 3),
        },
        TarEntry {
            name: "b.bin".into(),
            data: silesia_like(10_000, 4),
        },
    ]);
    assert_eq!(
        fingerprint(&archive),
        GOLDEN_TAR,
        "tar_archive of seeded entries changed"
    );
}

const GOLDEN_BASE64: u64 = 16_343_411_699_471_636_690;
const GOLDEN_SILESIA: u64 = 14_084_639_403_220_198_195;
const GOLDEN_FASTQ: u64 = 4_397_500_058_515_151_411;
const GOLDEN_TAR: u64 = 1_529_547_042_924_002_535;
