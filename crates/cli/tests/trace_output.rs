//! Process-level tests for `--trace` and `--trace-report`: run the real `rgz`
//! binary and validate the emitted Chrome trace-event JSON and the aggregated
//! trace report with the bench harness's JSON parser.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use rgz_bench::json::{parse, JsonValue};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_rgz")
}

fn run_rgz(arguments: &[&str]) -> Output {
    Command::new(binary())
        .args(arguments)
        .output()
        .expect("failed to spawn the rgz binary")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("rgz_trace_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn path_str(path: &Path) -> &str {
    path.to_str().unwrap()
}

fn number(value: &JsonValue, key: &str) -> f64 {
    value
        .get(key)
        .and_then(|v| v.as_number())
        .unwrap_or_else(|| panic!("missing number {key} in {value:?}"))
}

fn events(trace: &JsonValue) -> &[JsonValue] {
    match trace {
        JsonValue::Array(events) => events,
        other => panic!("trace is not a JSON array: {other:?}"),
    }
}

#[test]
fn trace_flag_emits_parseable_chrome_trace_covering_the_input() {
    let dir = TempDir::new("chrome");
    let data = rgz_datagen::fastq_of_size(700_000, 90);
    let compressed = rgz_gzip::GzipWriter::default().compress(&data);
    let compressed_size = compressed.len() as u64;
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();
    let trace_path = dir.file("trace.json");

    let output = run_rgz(&[
        "--chunk-size",
        "64",
        "-P",
        "2",
        "--verbose",
        "--trace",
        path_str(&trace_path),
        "--trace-report=json",
        "-o",
        path_str(&dir.file("out")),
        path_str(&gz),
    ]);
    assert!(
        output.status.success(),
        "traced run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);

    let trace = parse(&std::fs::read_to_string(&trace_path).unwrap())
        .expect("trace file is not valid JSON");
    let events = events(&trace);
    assert!(!events.is_empty());

    // One named track per worker thread (plus the main thread's track).
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .expect("thread_name metadata without a name")
        })
        .collect();
    for worker in ["rgz-worker-0", "rgz-worker-1"] {
        assert!(
            track_names.contains(&worker),
            "missing a track for {worker}: {track_names:?}"
        );
    }

    // Chunk decode spans must cover the whole compressed input: collect the
    // absolute byte ranges of all decode spans and union them.
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    let mut span_count = 0usize;
    let mut commit_instants = 0u64;
    for event in events {
        let phase = event.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        let name = event.get("name").and_then(|n| n.as_str()).unwrap_or("");
        if phase == "i" && name == "spec_commit" {
            commit_instants += 1;
        }
        if phase != "X" {
            continue;
        }
        span_count += 1;
        if matches!(
            name,
            "decode_two_stage" | "decode_one_stage" | "random_access"
        ) {
            let args = event.get("args").expect("span without args");
            if args.get("compressed_start").is_some() {
                let outcome = args.get("outcome").and_then(|o| o.as_str()).unwrap_or("");
                if outcome == "not_found" || outcome == "error" {
                    continue;
                }
                ranges.push((
                    number(args, "compressed_start") as u64,
                    number(args, "compressed_end") as u64,
                ));
            }
        }
    }
    assert!(span_count > 0, "no complete (X) span events in the trace");
    assert!(!ranges.is_empty(), "no decode spans with byte ranges");
    ranges.sort_unstable();
    assert_eq!(ranges[0].0, 0, "first decode span must start at byte 0");
    let mut covered_to = 0u64;
    for (start, end) in &ranges {
        assert!(
            *start <= covered_to,
            "gap in decode span coverage before byte {start} (covered to {covered_to})"
        );
        covered_to = covered_to.max(*end);
    }
    assert!(
        covered_to >= compressed_size,
        "decode spans cover only {covered_to} of {compressed_size} compressed bytes"
    );

    // The aggregated metrics JSON (one object line on stderr) must reconcile
    // with the reader statistics printed by --verbose.
    let stderr = String::from_utf8_lossy(&output.stderr);
    let metrics_line = stderr
        .lines()
        .find(|line| line.starts_with('{') && line.contains("\"wall_us\""))
        .expect("no metrics JSON line on stderr");
    let metrics = parse(metrics_line).expect("metrics line is not valid JSON");
    let speculation = metrics.get("speculation").expect("no speculation block");
    let committed = number(speculation, "committed_chunks") as u64;
    assert_eq!(
        committed, commit_instants,
        "metrics and trace disagree on committed chunks"
    );

    let verbose_line = stderr
        .lines()
        .find(|line| line.contains("speculative,"))
        .expect("no chunk statistics in --verbose output");
    let statistics_committed: u64 = verbose_line
        .split("chunks: ")
        .nth(1)
        .and_then(|rest| rest.split(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("unparseable chunk statistics line");
    assert_eq!(
        committed, statistics_committed,
        "metrics JSON disagrees with ReaderStatistics:\n{stderr}"
    );

    let stages = metrics
        .get("stages")
        .and_then(|s| s.as_object())
        .expect("no stages object");
    let stage_count = |stages: &BTreeMap<String, JsonValue>, name: &str| {
        stages.get(name).map(|s| number(s, "count") as u64)
    };
    assert_eq!(
        stage_count(stages, "marker_replace"),
        Some(committed),
        "every committed chunk gets exactly one marker_replace span"
    );
    assert!(stage_count(stages, "crc_fold").unwrap_or(0) > 0);
    assert!(number(&metrics, "wall_us") > 0.0);
}

/// The serial path still honors the deprecated `--metrics` spelling: it must
/// behave exactly like `--trace-report` and print a deprecation warning.
#[test]
fn serial_path_traces_and_reports_metrics() {
    let dir = TempDir::new("serial");
    let data = rgz_datagen::base64_random(200_000, 91);
    std::fs::write(
        dir.file("corpus.gz"),
        rgz_gzip::GzipWriter::default().compress(&data),
    )
    .unwrap();
    let trace_path = dir.file("trace.json");

    let output = run_rgz(&[
        "--serial",
        "--trace",
        path_str(&trace_path),
        "--metrics",
        "-o",
        path_str(&dir.file("out")),
        path_str(&dir.file("corpus.gz")),
    ]);
    assert!(
        output.status.success(),
        "serial traced run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);

    let trace = parse(&std::fs::read_to_string(&trace_path).unwrap())
        .expect("serial trace file is not valid JSON");
    let serial_span = events(&trace).iter().any(|event| {
        event.get("ph").and_then(|p| p.as_str()) == Some("X")
            && event.get("name").and_then(|n| n.as_str()) == Some("serial_decode")
    });
    assert!(serial_span, "missing serial_decode span in the trace");

    // Human-readable trace report on stderr, plus the deprecation notice.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("trace:") && stderr.contains("serial_decode"),
        "missing trace report:\n{stderr}"
    );
    assert!(
        stderr.contains("--metrics is deprecated"),
        "missing deprecation warning for --metrics:\n{stderr}"
    );
}

#[test]
fn untraced_runs_emit_neither_trace_nor_metrics() {
    let dir = TempDir::new("off");
    let data = rgz_datagen::base64_random(150_000, 92);
    std::fs::write(
        dir.file("corpus.gz"),
        rgz_gzip::GzipWriter::default().compress(&data),
    )
    .unwrap();
    let output = run_rgz(&[
        "-o",
        path_str(&dir.file("out")),
        path_str(&dir.file("corpus.gz")),
    ]);
    assert!(output.status.success());
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!stderr.contains("\"wall_us\""));
    assert!(!stderr.contains("trace events"));
}
