//! Process-level tests for the metrics surface: `--stats-interval` must emit
//! live progress lines and `--metrics-export` must write a Prometheus text
//! dump whose totals reconcile with the `--verbose` reader statistics — all
//! three are views of the same registry, so the numbers must agree exactly.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_rgz")
}

fn run_rgz(arguments: &[&str]) -> Output {
    Command::new(binary())
        .args(arguments)
        .output()
        .expect("failed to spawn the rgz binary")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("rgz_metrics_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn path_str(path: &Path) -> &str {
    path.to_str().unwrap()
}

/// Reads one series from a Prometheus text-format dump. `label` narrows the
/// match to a series carrying that `key="value"` pair; `None` requires the
/// bare (unlabeled) series.
fn series_value(export: &str, name: &str, label: Option<(&str, &str)>) -> Option<u64> {
    for line in export.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ')?;
        let matches = match label {
            Some((key, value)) => {
                series.starts_with(&format!("{name}{{"))
                    && series.contains(&format!("{key}=\"{value}\""))
            }
            None => series == name,
        };
        if matches {
            return value.parse().ok();
        }
    }
    None
}

/// Pulls a named count out of the `--verbose` chunk-statistics line, e.g.
/// `rgzip: chunks: 12 speculative, 1 on-demand, 0 mismatches, ...`.
fn verbose_count(stderr: &str, suffix: &str) -> u64 {
    let line = stderr
        .lines()
        .find(|line| line.contains("chunks:") && line.contains("speculative,"))
        .unwrap_or_else(|| panic!("no chunk statistics line in:\n{stderr}"));
    let mut previous = "";
    for word in line.split([' ', ',']).filter(|w| !w.is_empty()) {
        if word == suffix {
            return previous
                .parse()
                .unwrap_or_else(|_| panic!("unparseable count before {suffix:?}: {line}"));
        }
        previous = word;
    }
    panic!("no {suffix:?} count in: {line}");
}

#[test]
fn stats_interval_and_export_reconcile_with_verbose_statistics() {
    let dir = TempDir::new("reconcile");
    // Large enough that decoding outlives several 10 ms sampler ticks even on
    // a fast machine, so at least one progress line is guaranteed.
    let data = rgz_datagen::fastq_of_size(4_000_000, 90);
    let compressed = rgz_gzip::GzipWriter::default().compress(&data);
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();
    let export_path = dir.file("metrics.prom");

    let output = run_rgz(&[
        "--chunk-size",
        "64",
        "-P",
        "2",
        "--verbose",
        "--stats-interval",
        "0.01",
        "--metrics-export",
        path_str(&export_path),
        "-o",
        path_str(&dir.file("out")),
        path_str(&gz),
    ]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "run failed: {stderr}");
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);

    // At least one live progress line, with every advertised field present.
    let progress = stderr
        .lines()
        .find(|line| line.starts_with("rgzip: progress:"))
        .unwrap_or_else(|| panic!("no progress line on stderr:\n{stderr}"));
    for field in ["%", "in", "out", "MB/s", "eta", "cache", "queue"] {
        assert!(
            progress.contains(field),
            "progress line lacks {field:?}: {progress}"
        );
    }

    // The Prometheus dump must reconcile exactly with the --verbose counters:
    // both are rendered from the same registry after the pool went idle.
    let export = std::fs::read_to_string(&export_path).unwrap();
    assert!(export.contains("# TYPE rgz_chunks_decoded_total counter"));
    let chunks = |path| series_value(&export, "rgz_chunks_decoded_total", Some(("path", path)));
    assert_eq!(
        chunks("speculative"),
        Some(verbose_count(&stderr, "speculative"))
    );
    assert_eq!(
        chunks("on_demand"),
        Some(verbose_count(&stderr, "on-demand"))
    );
    assert_eq!(
        series_value(&export, "rgz_bytes_out_total", None),
        Some(data.len() as u64),
        "exported output byte counter disagrees with the decoded size"
    );
    assert!(
        series_value(&export, "rgz_read_bytes_total", None).unwrap_or(0) >= compressed.len() as u64,
        "instrumented reads must cover the whole compressed file"
    );
}

#[test]
fn compress_verb_exports_matching_prometheus_totals() {
    let dir = TempDir::new("compress");
    let data = rgz_datagen::base64_random(600_000, 93);
    let input = dir.file("corpus");
    std::fs::write(&input, &data).unwrap();
    let export_path = dir.file("metrics.prom");

    let output = run_rgz(&[
        "compress",
        "--chunk-size",
        "64",
        "-P",
        "2",
        "--metrics-export",
        path_str(&export_path),
        "-o",
        path_str(&dir.file("corpus.gz")),
        path_str(&input),
    ]);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "compress run failed: {stderr}");

    let export = std::fs::read_to_string(&export_path).unwrap();
    let compressed_size = std::fs::metadata(dir.file("corpus.gz")).unwrap().len();
    assert_eq!(
        series_value(&export, "rgz_compress_bytes_in_total", None),
        Some(data.len() as u64)
    );
    assert_eq!(
        series_value(&export, "rgz_compress_bytes_out_total", None),
        Some(compressed_size)
    );
    assert!(series_value(&export, "rgz_compress_chunks_total", None).unwrap_or(0) > 0);
}

#[test]
fn metrics_are_silent_without_the_flags() {
    let dir = TempDir::new("off");
    let data = rgz_datagen::base64_random(150_000, 94);
    std::fs::write(
        dir.file("corpus.gz"),
        rgz_gzip::GzipWriter::default().compress(&data),
    )
    .unwrap();
    let output = run_rgz(&[
        "-o",
        path_str(&dir.file("out")),
        path_str(&dir.file("corpus.gz")),
    ]);
    assert!(output.status.success());
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(!stderr.contains("rgzip: progress:"));
    assert!(!stderr.contains("Prometheus"));
}
