//! Process-level integration tests: run the real `rgz` binary to export a
//! seek-point index, re-import it, and byte-compare the decompressed output.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_rgz")
}

fn run_rgz(arguments: &[&str]) -> Output {
    Command::new(binary())
        .args(arguments)
        .output()
        .expect("failed to spawn the rgz binary")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("rgz_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn path_str(path: &Path) -> &str {
    path.to_str().unwrap()
}

#[test]
fn index_export_reimport_round_trips_in_both_formats() {
    let dir = TempDir::new("roundtrip");
    let data = rgz_datagen::fastq_of_size(600_000, 77);
    let compressed = rgz_gzip::GzipWriter::default().compress(&data);
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();

    let mut exported_sizes = Vec::new();
    for format in ["v1", "v2"] {
        let first_output = dir.file(&format!("first_{format}.out"));
        let index = dir.file(&format!("index_{format}.rgzidx"));
        let export = run_rgz(&[
            "--chunk-size",
            "64",
            "-P",
            "2",
            "--index-format",
            format,
            "--export-index",
            path_str(&index),
            "-o",
            path_str(&first_output),
            path_str(&gz),
        ]);
        assert!(
            export.status.success(),
            "export run failed: {}",
            String::from_utf8_lossy(&export.stderr)
        );
        assert_eq!(std::fs::read(&first_output).unwrap(), data);
        exported_sizes.push(std::fs::metadata(&index).unwrap().len());

        let second_output = dir.file(&format!("second_{format}.out"));
        let import = run_rgz(&[
            "--chunk-size",
            "64",
            "-P",
            "2",
            "--verbose",
            "--import-index",
            path_str(&index),
            "-o",
            path_str(&second_output),
            path_str(&gz),
        ]);
        assert!(
            import.status.success(),
            "import run failed: {}",
            String::from_utf8_lossy(&import.stderr)
        );
        // Byte-identical output through the imported index.
        assert_eq!(std::fs::read(&second_output).unwrap(), data);

        let stderr = String::from_utf8_lossy(&import.stderr);
        assert!(
            stderr.contains("decoded from index"),
            "missing reader statistics in --verbose output:\n{stderr}"
        );
        assert!(
            stderr.contains("window memory"),
            "missing window memory statistics in --verbose output:\n{stderr}"
        );
    }

    // The compressed-window format must be substantially smaller than raw.
    let (v1_size, v2_size) = (exported_sizes[0], exported_sizes[1]);
    assert!(
        v2_size * 2 < v1_size,
        "v2 index ({v2_size}) not smaller than v1 ({v1_size})"
    );
}

#[test]
fn corrupt_index_files_are_rejected_cleanly() {
    let dir = TempDir::new("corrupt");
    let data = rgz_datagen::base64_random(200_000, 78);
    let compressed = rgz_gzip::GzipWriter::default().compress(&data);
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();

    let index = dir.file("index.rgzidx");
    let export = run_rgz(&[
        "--chunk-size",
        "64",
        "--export-index",
        path_str(&index),
        "-o",
        path_str(&dir.file("out")),
        path_str(&gz),
    ]);
    assert!(export.status.success());

    let mut corrupted = std::fs::read(&index).unwrap();
    let middle = corrupted.len() / 2;
    corrupted[middle] ^= 0xFF;
    std::fs::write(&index, &corrupted).unwrap();

    let import = run_rgz(&[
        "--import-index",
        path_str(&index),
        "-o",
        path_str(&dir.file("out2")),
        path_str(&gz),
    ]);
    assert!(!import.status.success());
    let stderr = String::from_utf8_lossy(&import.stderr);
    assert!(
        stderr.contains("checksum"),
        "expected a checksum error, got:\n{stderr}"
    );
}

#[test]
fn corrupted_trailer_fails_unless_verification_is_disabled() {
    let dir = TempDir::new("verify");
    let data = rgz_datagen::base64_random(400_000, 80);
    let mut compressed = rgz_gzip::GzipWriter::default().compress(&data);
    // Flip one bit of the member's trailer CRC: the stream still decodes,
    // only checksum verification can catch it.
    let length = compressed.len();
    compressed[length - 6] ^= 0x04;
    let gz = dir.file("corrupt.gz");
    std::fs::write(&gz, &compressed).unwrap();

    let verified = run_rgz(&[
        "--chunk-size",
        "64",
        "-P",
        "2",
        "-o",
        path_str(&dir.file("out")),
        path_str(&gz),
    ]);
    assert!(
        !verified.status.success(),
        "verification on by default must reject a corrupt trailer"
    );
    let stderr = String::from_utf8_lossy(&verified.stderr);
    assert!(
        stderr.contains("CRC-32 mismatch") && stderr.contains("member 0"),
        "expected a member-naming CRC error, got:\n{stderr}"
    );

    let unverified = run_rgz(&[
        "--chunk-size",
        "64",
        "-P",
        "2",
        "--no-verify",
        "--verbose",
        "-o",
        path_str(&dir.file("out2")),
        path_str(&gz),
    ]);
    assert!(
        unverified.status.success(),
        "--no-verify run failed: {}",
        String::from_utf8_lossy(&unverified.stderr)
    );
    assert_eq!(std::fs::read(dir.file("out2")).unwrap(), data);
    let stderr = String::from_utf8_lossy(&unverified.stderr);
    assert!(
        stderr.contains("verification (Off)"),
        "missing verification statistics in --verbose output:\n{stderr}"
    );

    // The serial baseline honours the same flags.
    let serial = run_rgz(&["--serial", "-o", path_str(&dir.file("out3")), path_str(&gz)]);
    assert!(!serial.status.success());
    let serial_off = run_rgz(&[
        "--serial",
        "--no-verify",
        "-o",
        path_str(&dir.file("out4")),
        path_str(&gz),
    ]);
    assert!(serial_off.status.success());
    assert_eq!(std::fs::read(dir.file("out4")).unwrap(), data);
}

#[test]
fn verified_decompression_reports_statistics() {
    let dir = TempDir::new("verifystats");
    let data = rgz_datagen::fastq_of_size(500_000, 81);
    let compressed =
        rgz_gzip::CompressorFrontend::new(rgz_gzip::FrontendKind::Bgzf, 6).compress(&data);
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();
    let output = run_rgz(&[
        "--chunk-size",
        "64",
        "-P",
        "2",
        "--verify",
        "--verbose",
        "-o",
        path_str(&dir.file("out")),
        path_str(&gz),
    ]);
    assert!(
        output.status.success(),
        "verified run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("verification (Full)") && !stderr.contains(" 0 members verified"),
        "expected non-zero verification statistics:\n{stderr}"
    );
}

#[test]
fn verbose_serial_mode_still_works() {
    let dir = TempDir::new("serial");
    let data = rgz_datagen::base64_random(100_000, 79);
    std::fs::write(
        dir.file("corpus.gz"),
        rgz_gzip::GzipWriter::default().compress(&data),
    )
    .unwrap();
    let output = run_rgz(&[
        "--serial",
        "--verbose",
        "-o",
        path_str(&dir.file("out")),
        path_str(&dir.file("corpus.gz")),
    ]);
    assert!(output.status.success());
    assert_eq!(std::fs::read(dir.file("out")).unwrap(), data);
}
