//! Process-level tests for the `rgz compress` verb: the emitted file must
//! decode through both the serial library decoder and the parallel `rgz`
//! decompress path, and the index written at compress time must drive fully
//! verified random-access reads when imported back.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_rgz")
}

fn run_rgz(arguments: &[&str]) -> Output {
    Command::new(binary())
        .args(arguments)
        .output()
        .expect("failed to spawn the rgz binary")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("rgz_compress_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn path_str(path: &Path) -> &str {
    path.to_str().unwrap()
}

#[test]
fn compress_then_decompress_round_trips_with_a_verified_index() {
    let dir = TempDir::new("roundtrip");
    let data = rgz_datagen::silesia_like(900_000, 41);
    let raw = dir.file("corpus.bin");
    std::fs::write(&raw, &data).unwrap();

    let gz = dir.file("corpus.bin.gz");
    let index = dir.file("corpus.rgzidx");
    let compress = run_rgz(&[
        "compress",
        "-l",
        "6",
        "-P",
        "3",
        "--chunk-size",
        "48",
        "--member-size",
        "192",
        "--export-index",
        path_str(&index),
        "-v",
        path_str(&raw),
    ]);
    assert!(
        compress.status.success(),
        "compress run failed: {}",
        String::from_utf8_lossy(&compress.stderr)
    );
    // Default output path is FILE.gz; the stream must be a valid multi-member
    // gzip file for the serial decoder.
    let compressed = std::fs::read(&gz).unwrap();
    assert_eq!(rgz_gzip::decompress(&compressed).unwrap(), data);
    assert!(compressed.len() < data.len());

    // Decompress through the parallel reader with the compress-time index;
    // every chunk must verify against the stored CRC fragments.
    let restored = dir.file("restored.bin");
    let decompress = run_rgz(&[
        "-P",
        "3",
        "--import-index",
        path_str(&index),
        "-v",
        "-o",
        path_str(&restored),
        path_str(&gz),
    ]);
    assert!(
        decompress.status.success(),
        "decompress run failed: {}",
        String::from_utf8_lossy(&decompress.stderr)
    );
    assert_eq!(std::fs::read(&restored).unwrap(), data);
    let stderr = String::from_utf8_lossy(&decompress.stderr);
    let verification_line = stderr
        .lines()
        .find(|line| line.contains("random access:"))
        .unwrap_or_else(|| panic!("no verification line in stderr:\n{stderr}"));
    assert!(
        verification_line.contains(" 0 unverified"),
        "expected zero unverified chunks: {verification_line}"
    );
    assert!(
        !verification_line.contains("random access: 0 chunk(s) verified"),
        "expected at least one verified chunk: {verification_line}"
    );
}

#[test]
fn bgzf_mode_emits_real_bgzf() {
    let dir = TempDir::new("bgzf");
    let data = rgz_datagen::fastq_of_size(400_000, 42);
    let raw = dir.file("reads.fastq");
    std::fs::write(&raw, &data).unwrap();

    let out = dir.file("reads.fastq.bgz");
    let compress = run_rgz(&[
        "compress",
        "--bgzf",
        "-P",
        "2",
        "-o",
        path_str(&out),
        path_str(&raw),
    ]);
    assert!(
        compress.status.success(),
        "bgzf compress failed: {}",
        String::from_utf8_lossy(&compress.stderr)
    );
    let compressed = std::fs::read(&out).unwrap();
    assert_eq!(rgz_gzip::decompress(&compressed).unwrap(), data);
    // Every member (including the EOF block) must carry the BC subfield.
    assert!(rgz_gzip::bgzf::block_offsets(&compressed).is_ok());
    assert!(compressed.ends_with(&rgz_gzip::BGZF_EOF_BLOCK));
}

#[test]
fn levels_trade_size_for_speed() {
    let dir = TempDir::new("levels");
    let data = rgz_datagen::silesia_like(500_000, 43);
    let raw = dir.file("corpus.bin");
    std::fs::write(&raw, &data).unwrap();

    let mut sizes = Vec::new();
    for level in ["0", "1", "9"] {
        let out = dir.file(&format!("corpus.l{level}.gz"));
        let compress = run_rgz(&[
            "compress",
            "-l",
            level,
            "-o",
            path_str(&out),
            path_str(&raw),
        ]);
        assert!(compress.status.success(), "level {level} failed");
        let compressed = std::fs::read(&out).unwrap();
        assert_eq!(rgz_gzip::decompress(&compressed).unwrap(), data, "{level}");
        sizes.push(compressed.len());
    }
    assert!(sizes[0] > data.len(), "level 0 is stored plus framing");
    assert!(sizes[1] < data.len(), "level 1 must compress");
    assert!(sizes[2] <= sizes[1], "level 9 must not lose to level 1");
}

#[test]
fn bad_arguments_exit_with_usage() {
    let output = run_rgz(&["compress", "--no-such-flag", "x"]);
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage: rgzip compress"));

    let output = run_rgz(&["compress", "-l", "11", "x"]);
    assert_eq!(output.status.code(), Some(2));
}
