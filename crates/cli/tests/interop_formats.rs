//! Process-level interop tests: run the real `rgz` binary to export an
//! index in each supported format (native v1/v2, gztool `.gzi`,
//! indexed_gzip), re-import it with autodetection, and byte-compare the
//! decompressed output and random-access reads.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_rgz")
}

fn run_rgz(arguments: &[&str]) -> Output {
    Command::new(binary())
        .args(arguments)
        .output()
        .expect("failed to spawn the rgz binary")
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("rgz_interop_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        Self(path)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn path_str(path: &Path) -> &str {
    path.to_str().unwrap()
}

/// Export in every format, reimport with autodetection, compare the output.
#[test]
fn all_four_formats_round_trip_through_the_binary() {
    let dir = TempDir::new("formats");
    let data = rgz_datagen::fastq_of_size(700_000, 83);
    let compressed = rgz_gzip::GzipWriter::default().compress(&data);
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();

    for format in ["v1", "v2", "gztool", "indexed-gzip"] {
        let index = dir.file(&format!("index.{format}"));
        let first_output = dir.file(&format!("first.{format}.out"));
        let export = run_rgz(&[
            "--chunk-size",
            "64",
            "-P",
            "2",
            "--index-format",
            format,
            "--export-index",
            path_str(&index),
            "-o",
            path_str(&first_output),
            path_str(&gz),
        ]);
        assert!(
            export.status.success(),
            "{format}: export run failed: {}",
            String::from_utf8_lossy(&export.stderr)
        );
        assert_eq!(std::fs::read(&first_output).unwrap(), data, "{format}");
        let stderr = String::from_utf8_lossy(&export.stderr);
        assert!(
            stderr.contains(&format!("exported {format} index")),
            "{format}: missing export report:\n{stderr}"
        );

        let second_output = dir.file(&format!("second.{format}.out"));
        let import = run_rgz(&[
            "--chunk-size",
            "64",
            "-P",
            "2",
            "--verbose",
            "--import-index",
            path_str(&index),
            "-o",
            path_str(&second_output),
            path_str(&gz),
        ]);
        assert!(
            import.status.success(),
            "{format}: import run failed: {}",
            String::from_utf8_lossy(&import.stderr)
        );
        assert_eq!(
            std::fs::read(&second_output).unwrap(),
            data,
            "{format}: byte mismatch through the imported index"
        );
        let stderr = String::from_utf8_lossy(&import.stderr);
        assert!(
            stderr.contains("imported") && stderr.contains("index"),
            "{format}: missing autodetection report:\n{stderr}"
        );
        assert!(
            stderr.contains("decoded from index") || stderr.contains("index-aligned"),
            "{format}: missing index statistics:\n{stderr}"
        );
    }
}

/// Cross-format conversion: gzip -> gztool index -> import -> re-export as
/// indexed_gzip -> import again; output must stay byte-identical.
#[test]
fn cross_format_conversion_chain_preserves_output() {
    let dir = TempDir::new("chain");
    let data = rgz_datagen::silesia_like(600_000, 84);
    let compressed = rgz_gzip::GzipWriter::default().compress(&data);
    let gz = dir.file("corpus.gz");
    std::fs::write(&gz, &compressed).unwrap();

    // Build a gztool index.
    let gzi = dir.file("corpus.gzi");
    let export = run_rgz(&[
        "--chunk-size",
        "64",
        "--index-format",
        "gztool",
        "--export-index",
        path_str(&gzi),
        "-o",
        path_str(&dir.file("out0")),
        path_str(&gz),
    ]);
    assert!(export.status.success());

    // Import it and re-export as indexed_gzip in the same run.
    let gzidx = dir.file("corpus.gzidx");
    let convert = run_rgz(&[
        "--chunk-size",
        "64",
        "--import-index",
        path_str(&gzi),
        "--index-format",
        "indexed-gzip",
        "--export-index",
        path_str(&gzidx),
        "-o",
        path_str(&dir.file("out1")),
        path_str(&gz),
    ]);
    assert!(
        convert.status.success(),
        "conversion run failed: {}",
        String::from_utf8_lossy(&convert.stderr)
    );
    assert_eq!(std::fs::read(dir.file("out1")).unwrap(), data);
    // gztool files carry no compressed size; the re-export must backfill it
    // from the actual .gz file rather than writing 0 into the GZIDX header.
    let gzidx_bytes = std::fs::read(&gzidx).unwrap();
    assert_eq!(
        u64::from_le_bytes(gzidx_bytes[7..15].try_into().unwrap()),
        compressed.len() as u64,
        "GZIDX header lost the compressed file size across the conversion"
    );

    // The converted index still drives byte-identical output.
    let import = run_rgz(&[
        "--chunk-size",
        "64",
        "--import-index",
        path_str(&gzidx),
        "-o",
        path_str(&dir.file("out2")),
        path_str(&gz),
    ]);
    assert!(
        import.status.success(),
        "import of converted index failed: {}",
        String::from_utf8_lossy(&import.stderr)
    );
    assert_eq!(std::fs::read(dir.file("out2")).unwrap(), data);
}

/// Corrupt foreign files are rejected with a clean error, not a panic.
#[test]
fn corrupt_foreign_indexes_are_rejected_cleanly() {
    let dir = TempDir::new("hostile");
    let data = rgz_datagen::base64_random(200_000, 85);
    std::fs::write(
        dir.file("corpus.gz"),
        rgz_gzip::GzipWriter::default().compress(&data),
    )
    .unwrap();

    // A gztool header declaring u64::MAX points.
    let mut hostile = vec![0u8; 8];
    hostile.extend_from_slice(b"gzipindx");
    hostile.extend_from_slice(&u64::MAX.to_be_bytes());
    hostile.extend_from_slice(&u64::MAX.to_be_bytes());
    hostile.extend_from_slice(&[0u8; 64]);
    let gzi = dir.file("hostile.gzi");
    std::fs::write(&gzi, &hostile).unwrap();

    let output = run_rgz(&[
        "--import-index",
        path_str(&gzi),
        "-o",
        path_str(&dir.file("out")),
        path_str(&dir.file("corpus.gz")),
    ]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("seek-point count"),
        "expected the typed point-count error, got:\n{stderr}"
    );

    // An unknown magic.
    let unknown = dir.file("unknown.idx");
    std::fs::write(&unknown, b"definitely not an index").unwrap();
    let output = run_rgz(&[
        "--import-index",
        path_str(&unknown),
        "-o",
        path_str(&dir.file("out2")),
        path_str(&dir.file("corpus.gz")),
    ]);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("not a recognised index"),
        "expected the magic error, got:\n{stderr}"
    );
}
