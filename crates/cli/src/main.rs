//! `rgzip` — a rapidgzip-style command line tool.
//!
//! ```text
//! rgzip [OPTIONS] <FILE>
//! rgzip compress [OPTIONS] <FILE>
//!
//!   -d, --decompress          decompress FILE to stdout (default action)
//!   -P, --threads <N>         number of decompression threads (default: all cores)
//!       --chunk-size <KiB>    compressed chunk size in KiB (default: 4096)
//!       --count-lines         count newlines instead of writing the output
//!       --export-index <PATH> write the seek-point index to PATH
//!       --import-index <PATH> load a seek-point index from PATH; the format
//!                             (native v1/v2/v3, gztool .gzi, indexed_gzip) is
//!                             autodetected from the magic bytes
//!       --index-format <FMT>  exported index format: v1 (raw windows),
//!                             v2 (compressed windows),
//!                             v3 (compressed windows + per-point CRC-32
//!                             fragments for verified random access, default),
//!                             gztool (.gzi) or indexed-gzip (GZIDX)
//!       --verify              verify member CRC-32 and ISIZE trailers while
//!                             decompressing (default)
//!       --no-verify           skip checksum verification (faster, but silent
//!                             corruption goes undetected)
//!       --serial              use the single-threaded decoder (baseline)
//!       --trace <PATH>        record per-chunk pipeline events and write them
//!                             as Chrome trace-event JSON to PATH (load in
//!                             ui.perfetto.dev or chrome://tracing)
//!       --trace-report[=json] print an aggregated trace report (per-stage
//!                             latency percentiles, worker utilization,
//!                             speculation waste, prefetch hit rate) to stderr;
//!                             `=json` emits one machine-readable JSON line
//!       --metrics[=json]      deprecated alias for --trace-report[=json]
//!       --stats-interval <S>  print a live one-line progress report (input/
//!                             output MB/s, ETA, window-cache hit rate, pool
//!                             queue depth) to stderr every S seconds,
//!                             computed from periodic metrics-registry samples
//!       --metrics-export <P>  write every metric series in Prometheus text
//!                             exposition format (0.0.4) to P at exit
//!   -v, --verbose             print the selected SIMD kernels, reader
//!                             statistics and index/window memory usage to
//!                             stderr
//!   -o, --output <PATH>       write output to PATH instead of stdout
//!   -h, --help                show this help
//!
//! The `compress` verb runs the chunk-parallel write path instead:
//!
//!   -l, --level <0-9>         gzip-style compression level (default: 6)
//!       --bgzf                emit BGZF (64 KiB-input blocks with the BC
//!                             extra subfield) instead of pigz-style members
//!   -P, --threads <N>         number of compression threads
//!       --chunk-size <KiB>    input bytes per parallel work unit (default: 128)
//!       --member-size <KiB>   input bytes per gzip member (pigz mode,
//!                             default: 2048)
//!       --export-index <PATH> write the index captured during compression
//!                             (seek points + CRC-32 fragments) to PATH
//!       --index-format <FMT>  exported index format (default: v3)
//!   -o, --output <PATH>       output path (default: FILE.gz)
//!   -v, --verbose             print member/chunk/index statistics to stderr
//! ```

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use rgz_core::{ParallelGzipReader, ParallelGzipReaderOptions, VerificationMode};
use rgz_interop::AnyIndexFormat;
use rgz_io::SharedFileReader;
use rgz_metrics::{names, MetricsRegistry, SampleWindow, Sampler};
use rgz_trace::{chrome_trace_json, MetricsReport, Outcome, Stage, TraceSink};

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReportFormat {
    Text,
    Json,
}

struct Options {
    file: String,
    threads: usize,
    chunk_size_kib: usize,
    count_lines: bool,
    export_index: Option<String>,
    import_index: Option<String>,
    index_format: AnyIndexFormat,
    verification: VerificationMode,
    serial: bool,
    verbose: bool,
    output: Option<String>,
    trace: Option<String>,
    trace_report: Option<ReportFormat>,
    stats_interval: Option<f64>,
    metrics_export: Option<String>,
}

fn print_usage() {
    eprintln!("usage: rgzip [-d] [-P N] [--chunk-size KiB] [--count-lines]");
    eprintln!("             [--export-index PATH] [--import-index PATH]");
    eprintln!("             [--index-format v1|v2|v3|gztool|indexed-gzip]");
    eprintln!("             [--verify|--no-verify] [--serial] [-v]");
    eprintln!("             [--trace PATH] [--trace-report[=json]]");
    eprintln!("             [--stats-interval SECS] [--metrics-export PATH]");
    eprintln!("             [-o OUTPUT] FILE");
    eprintln!("       rgzip compress [OPTIONS] FILE   (see `rgzip compress --help`)");
}

fn parse_arguments() -> Result<Options, String> {
    let mut arguments = std::env::args().skip(1);
    let mut options = Options {
        file: String::new(),
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        chunk_size_kib: 4096,
        count_lines: false,
        export_index: None,
        import_index: None,
        index_format: AnyIndexFormat::default(),
        verification: VerificationMode::default(),
        serial: false,
        verbose: false,
        output: None,
        trace: None,
        trace_report: None,
        stats_interval: None,
        metrics_export: None,
    };
    let next_value = |arguments: &mut dyn Iterator<Item = String>, flag: &str| {
        arguments
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "-h" | "--help" => {
                print_usage();
                std::process::exit(0);
            }
            "-d" | "--decompress" => {}
            "--verify" => options.verification = VerificationMode::Full,
            "--no-verify" => options.verification = VerificationMode::Off,
            "--serial" => options.serial = true,
            "-v" | "--verbose" => options.verbose = true,
            "--count-lines" => options.count_lines = true,
            "-P" | "--threads" => {
                options.threads = next_value(&mut arguments, "-P")?
                    .parse()
                    .map_err(|e| format!("invalid thread count: {e}"))?;
            }
            "--chunk-size" => {
                options.chunk_size_kib = next_value(&mut arguments, "--chunk-size")?
                    .parse()
                    .map_err(|e| format!("invalid chunk size: {e}"))?;
            }
            "--export-index" => {
                options.export_index = Some(next_value(&mut arguments, "--export-index")?);
            }
            "--import-index" => {
                options.import_index = Some(next_value(&mut arguments, "--import-index")?);
            }
            "--index-format" => {
                options.index_format = next_value(&mut arguments, "--index-format")?.parse()?;
            }
            "-o" | "--output" => {
                options.output = Some(next_value(&mut arguments, "-o")?);
            }
            "--trace" => {
                options.trace = Some(next_value(&mut arguments, "--trace")?);
            }
            "--trace-report" | "--trace-report=text" => {
                options.trace_report = Some(ReportFormat::Text);
            }
            "--trace-report=json" => options.trace_report = Some(ReportFormat::Json),
            // Deprecated spellings kept for one release so existing scripts
            // and the perf harness keep working.
            "--metrics" | "--metrics=text" => {
                eprintln!("rgzip: warning: --metrics is deprecated; use --trace-report");
                options.trace_report = Some(ReportFormat::Text);
            }
            "--metrics=json" => {
                eprintln!("rgzip: warning: --metrics=json is deprecated; use --trace-report=json");
                options.trace_report = Some(ReportFormat::Json);
            }
            "--stats-interval" => {
                let seconds: f64 = next_value(&mut arguments, "--stats-interval")?
                    .parse()
                    .map_err(|e| format!("invalid stats interval: {e}"))?;
                if !seconds.is_finite() || seconds <= 0.0 {
                    return Err(format!("invalid stats interval: {seconds} (expected > 0)"));
                }
                options.stats_interval = Some(seconds);
            }
            "--metrics-export" => {
                options.metrics_export = Some(next_value(&mut arguments, "--metrics-export")?);
            }
            other if !other.starts_with('-') && options.file.is_empty() => {
                options.file = other.to_string();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if options.file.is_empty() {
        return Err("no input file given".to_string());
    }
    Ok(options)
}

fn run(options: &Options) -> Result<(), String> {
    let start = std::time::Instant::now();

    if options.verbose {
        // Which kernel each runtime-dispatched hot path selected on this
        // machine (all of them fall back to "scalar"-family names under
        // RGZ_FORCE_SCALAR=1 or on CPUs without the fast ISAs).
        eprintln!(
            "rgzip: kernels: crc32={}, marker-replacement={}, block-finder={}{}",
            rgz_checksum::crc32_active_isa(),
            rgz_deflate::markers_active_isa(),
            rgz_blockfinder::finder_active_isa(),
            if rgz_bitio::scalar_forced() {
                " [RGZ_FORCE_SCALAR=1]"
            } else {
                ""
            }
        );
    }

    // One sink serves both decoder paths; it records nothing (a single
    // relaxed atomic load per call site) unless tracing or metrics were
    // requested.
    let trace = if options.trace.is_some() || options.trace_report.is_some() {
        Arc::new(TraceSink::new_enabled())
    } else {
        Arc::new(TraceSink::new())
    };

    // The metrics registry backs three consumers — the live --stats-interval
    // progress line, the Prometheus --metrics-export dump, and the hit-rate
    // figures in the --verbose summary — so it is enabled whenever any of
    // them was requested. Disabled, every instrument is one relaxed load.
    let metrics_enabled =
        options.verbose || options.stats_interval.is_some() || options.metrics_export.is_some();
    let registry = if metrics_enabled {
        Arc::new(MetricsRegistry::new_enabled())
    } else {
        MetricsRegistry::shared_disabled()
    };

    let mut sink: Box<dyn Write> = match &options.output {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?,
        )),
        None => Box::new(std::io::BufWriter::new(std::io::stdout())),
    };

    let total_bytes;
    let mut line_count = 0u64;
    // Throughput is reported over the decode loop alone: file opening, index
    // import and index export all happen outside this window, so the MB/s
    // figure states what the decoder itself sustained.
    let decode_elapsed;

    if options.serial {
        let compressed = std::fs::read(&options.file)
            .map_err(|e| format!("cannot read {}: {e}", options.file))?;
        let mut decoder = rgz_gzip::GzipDecoder::new();
        if options.verification == VerificationMode::Off {
            decoder = decoder.without_checksum_verification();
        }
        let decode_start = std::time::Instant::now();
        let mut span = trace.span(Stage::SerialDecode);
        let result = decoder.decompress(&compressed);
        match &result {
            Ok(data) => {
                span.set_bytes(data.len() as u64);
                span.set_outcome(Outcome::Committed);
            }
            Err(_) => span.set_outcome(Outcome::Error),
        }
        span.finish();
        decode_elapsed = decode_start.elapsed();
        let data = result.map_err(|e| e.to_string())?;
        if options.verbose {
            eprintln!("rgzip: serial decoder: no chunk or index statistics");
        }
        total_bytes = data.len() as u64;
        if options.count_lines {
            line_count = data.iter().filter(|&&b| b == b'\n').count() as u64;
        } else {
            sink.write_all(&data).map_err(|e| e.to_string())?;
        }
    } else {
        let mut reader_options = ParallelGzipReaderOptions {
            parallelization: options.threads.max(1),
            chunk_size: options.chunk_size_kib.max(4) * 1024,
            verification: options.verification,
            ..Default::default()
        }
        .with_trace(trace.clone());
        if metrics_enabled {
            reader_options = reader_options.with_metrics(Arc::clone(&registry));
        }
        let compressed_size = std::fs::metadata(&options.file)
            .map(|metadata| metadata.len())
            .unwrap_or(0);
        let shared = SharedFileReader::open(&options.file)
            .map_err(|e| format!("cannot open {}: {e}", options.file))?;
        let mut reader = match &options.import_index {
            Some(path) => {
                let serialized =
                    std::fs::read(path).map_err(|e| format!("cannot read index {path}: {e}"))?;
                let imported = rgz_interop::import_index(&serialized).map_err(|e| e.to_string())?;
                if options.verbose || imported.windowless_points_dropped > 0 {
                    eprintln!(
                        "rgzip: imported {} index: {} seek points{}{}",
                        imported.format,
                        imported.index.block_map.len(),
                        if imported.windowless_points_dropped > 0 {
                            format!(
                                ", dropped {} window-less point(s)",
                                imported.windowless_points_dropped
                            )
                        } else {
                            String::new()
                        },
                        if imported.synthesized_leading_point {
                            ", synthesized a leading point"
                        } else {
                            ""
                        }
                    );
                    if imported.checksummed_points > 0 {
                        eprintln!(
                            "rgzip: {} of {} seek points carry CRC-32 fragments; \
                             random-access reads will be verified",
                            imported.checksummed_points,
                            imported.index.block_map.len()
                        );
                    } else {
                        eprintln!(
                            "rgzip: index stores no CRC-32 fragments; random-access \
                             reads through it are NOT verified (re-export as v3 to fix)"
                        );
                    }
                }
                ParallelGzipReader::with_index(shared, reader_options, imported.index)
            }
            None => ParallelGzipReader::new(shared, reader_options),
        }
        .map_err(|e| e.to_string())?;

        // The sampler thread snapshots the registry every interval and hands
        // the observer two consecutive samples; everything on the progress
        // line is computed from that delta window, so the live report and the
        // final export can never disagree about what happened.
        let sampler = options.stats_interval.map(|seconds| {
            let observer = Box::new(move |window: &SampleWindow| {
                let read_total = window.current.snapshot.counter_total(names::READ_BYTES);
                let in_rate = window.rate_per_sec(names::READ_BYTES);
                let out_rate = window.rate_per_sec(names::BYTES_OUT);
                let cache_hits = window
                    .current
                    .snapshot
                    .counter(names::WINDOW_CACHE, &[("event", "hit")])
                    .unwrap_or(0);
                let cache_misses = window
                    .current
                    .snapshot
                    .counter(names::WINDOW_CACHE, &[("event", "miss")])
                    .unwrap_or(0);
                let cache_lookups = cache_hits + cache_misses;
                let queue_depth = window.gauge(names::POOL_QUEUE_DEPTH, &[]).unwrap_or(0);
                let percent_done = if compressed_size > 0 {
                    100.0 * read_total as f64 / compressed_size as f64
                } else {
                    0.0
                };
                let eta = if in_rate > 0.0 && compressed_size > read_total {
                    format!("{:.0} s", (compressed_size - read_total) as f64 / in_rate)
                } else {
                    "-".to_string()
                };
                eprintln!(
                    "rgzip: progress: {percent_done:.1} % in {:.1} MB/s out {:.1} MB/s \
                     eta {eta} cache {:.0} % queue {queue_depth}",
                    in_rate / 1e6,
                    out_rate / 1e6,
                    if cache_lookups > 0 {
                        100.0 * cache_hits as f64 / cache_lookups as f64
                    } else {
                        0.0
                    },
                );
            }) as Box<dyn Fn(&SampleWindow) + Send>;
            Sampler::start_with_observer(
                Arc::clone(&registry),
                Duration::from_secs_f64(seconds),
                120,
                Some(observer),
            )
        });

        let decode_start = std::time::Instant::now();
        let mut buffer = vec![0u8; 4 << 20];
        let mut written = 0u64;
        loop {
            let read = std::io::Read::read(&mut reader, &mut buffer).map_err(|e| e.to_string())?;
            if read == 0 {
                break;
            }
            if options.count_lines {
                line_count += buffer[..read].iter().filter(|&&b| b == b'\n').count() as u64;
            } else {
                sink.write_all(&buffer[..read]).map_err(|e| e.to_string())?;
            }
            written += read as u64;
        }
        decode_elapsed = decode_start.elapsed();
        total_bytes = written;
        // Joins the sampler thread so no progress line interleaves with the
        // summary output below.
        drop(sampler);

        if let Some(path) = &options.export_index {
            let index = reader.build_full_index().map_err(|e| e.to_string())?;
            let (serialized, report) =
                rgz_interop::export_index_with_report(&index, options.index_format);
            std::fs::write(path, &serialized).map_err(|e| e.to_string())?;
            eprintln!(
                "rgzip: exported {} index with {} seek points ({} bytes) to {path}",
                options.index_format,
                index.block_map.len(),
                serialized.len()
            );
            if report.checksummed_points_dropped > 0 {
                eprintln!(
                    "rgzip: warning: {} format cannot store CRC-32 fragments; dropped \
                     checksums for {} seek point(s) (use --index-format v3 to keep them)",
                    options.index_format, report.checksummed_points_dropped
                );
            }
        }

        if options.verbose {
            let statistics = reader.statistics();
            eprintln!(
                "rgzip: chunks: {} speculative, {} on-demand, {} mismatches, \
                 {} prefetches issued, {} decoded from index",
                statistics.speculative_chunks_used,
                statistics.on_demand_chunks,
                statistics.speculative_mismatches,
                statistics.prefetches_issued,
                statistics.index_chunks
            );
            eprintln!(
                "rgzip: speculation waste: {} chunk(s) discarded, {} bytes decoded in vain",
                statistics.speculative_chunks_wasted, statistics.speculative_bytes_wasted
            );
            eprintln!(
                "rgzip: index-aligned prefetch: {} issued, {} hits",
                statistics.index_prefetches_issued, statistics.index_prefetch_hits
            );
            eprintln!(
                "rgzip: worker pool: {} tasks submitted, {} queued, {} in flight",
                statistics.pool_tasks_submitted,
                statistics.pool_queue_depth,
                statistics.pool_tasks_inflight
            );
            let windows = reader.window_statistics();
            let index = reader.index();
            eprintln!(
                "rgzip: index: {} seek points, {} windows; window memory: \
                 {} raw -> {} stored bytes ({:.2}x), {} pending compressions",
                index.block_map.len(),
                windows.windows,
                windows.original_bytes,
                windows.stored_bytes,
                windows.compression_ratio(),
                windows.pending_compressions
            );
            // The hit rate is computed from the registry snapshot rather than
            // re-derived here: window_statistics() above already published the
            // cache deltas, so the verbose line, the --stats-interval report
            // and a --metrics-export dump all show the same numbers.
            let snapshot = registry.snapshot();
            let cache_hits = snapshot
                .counter(names::WINDOW_CACHE, &[("event", "hit")])
                .unwrap_or(0);
            let cache_misses = snapshot
                .counter(names::WINDOW_CACHE, &[("event", "miss")])
                .unwrap_or(0);
            let cache_lookups = cache_hits + cache_misses;
            eprintln!(
                "rgzip: window cache: {} hot ({} hits / {} lookups = {:.1} % hit rate, \
                 {} evictions), {} corrupt",
                windows.hot_windows,
                cache_hits,
                cache_lookups,
                if cache_lookups > 0 {
                    100.0 * cache_hits as f64 / cache_lookups as f64
                } else {
                    0.0
                },
                windows.hot_cache.evictions,
                windows.corrupt_windows
            );
            let verification = reader.verification_statistics();
            eprintln!(
                "rgzip: verification ({:?}): {} members verified, {} bytes hashed, \
                 {} fragments folded, stream CRC-32 {:#010x}",
                verification.mode,
                verification.members_verified,
                verification.bytes_verified,
                verification.fragments_folded,
                verification.stream_crc32
            );
            eprintln!(
                "rgzip: random access: {} chunk(s) verified against stored fragments, \
                 {} unverified (index carried no fragments)",
                verification.index_chunks_verified, verification.index_chunks_unverified
            );
        }
    }

    sink.flush().map_err(|e| e.to_string())?;

    if let Some(path) = &options.trace {
        let json = chrome_trace_json(&trace);
        std::fs::write(path, json.as_bytes())
            .map_err(|e| format!("cannot write trace {path}: {e}"))?;
        eprintln!(
            "rgzip: wrote {} trace events to {path} (load in ui.perfetto.dev)",
            trace.event_count()
        );
    }
    match options.trace_report {
        Some(ReportFormat::Text) => {
            eprint!("{}", MetricsReport::from_sink(&trace).render_text());
        }
        Some(ReportFormat::Json) => {
            eprintln!("{}", MetricsReport::from_sink(&trace).to_json());
        }
        None => {}
    }
    // The export is written at exit rather than on a signal: without a signal
    // handling dependency the process cannot observe SIGUSR1, so the final
    // registry state is the one scrape this build can offer.
    if let Some(path) = &options.metrics_export {
        std::fs::write(path, registry.render_prometheus())
            .map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        eprintln!("rgzip: wrote Prometheus metrics to {path}");
    }

    let elapsed = start.elapsed();
    if options.count_lines {
        println!("{line_count}");
    }
    eprintln!(
        "rgzip: {} bytes decoded in {:.2} s ({:.1} MB/s, {} threads); {:.2} s total",
        total_bytes,
        decode_elapsed.as_secs_f64(),
        total_bytes as f64 / 1e6 / decode_elapsed.as_secs_f64().max(1e-9),
        if options.serial { 1 } else { options.threads },
        elapsed.as_secs_f64()
    );
    Ok(())
}

struct CompressOptions {
    file: String,
    level: u8,
    bgzf: bool,
    threads: usize,
    chunk_size_kib: usize,
    member_size_kib: usize,
    export_index: Option<String>,
    index_format: AnyIndexFormat,
    output: Option<String>,
    verbose: bool,
    metrics_export: Option<String>,
}

fn print_compress_usage() {
    eprintln!("usage: rgzip compress [-l 0-9] [--bgzf] [-P N] [--chunk-size KiB]");
    eprintln!("                      [--member-size KiB] [--export-index PATH]");
    eprintln!("                      [--index-format v1|v2|v3|gztool|indexed-gzip]");
    eprintln!("                      [--metrics-export PATH]");
    eprintln!("                      [-v] [-o OUTPUT] FILE");
}

fn parse_compress_arguments(
    arguments: impl Iterator<Item = String>,
) -> Result<CompressOptions, String> {
    let mut arguments = arguments;
    let mut options = CompressOptions {
        file: String::new(),
        level: 6,
        bgzf: false,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        chunk_size_kib: 128,
        member_size_kib: 2048,
        export_index: None,
        index_format: AnyIndexFormat::default(),
        output: None,
        verbose: false,
        metrics_export: None,
    };
    let next_value = |arguments: &mut dyn Iterator<Item = String>, flag: &str| {
        arguments
            .next()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while let Some(argument) = arguments.next() {
        match argument.as_str() {
            "-h" | "--help" => {
                print_compress_usage();
                std::process::exit(0);
            }
            "--bgzf" => options.bgzf = true,
            "-v" | "--verbose" => options.verbose = true,
            "-l" | "--level" => {
                options.level = next_value(&mut arguments, "-l")?
                    .parse()
                    .map_err(|e| format!("invalid level: {e}"))?;
                if options.level > 9 {
                    return Err(format!("invalid level: {} (expected 0-9)", options.level));
                }
            }
            "-P" | "--threads" => {
                options.threads = next_value(&mut arguments, "-P")?
                    .parse()
                    .map_err(|e| format!("invalid thread count: {e}"))?;
            }
            "--chunk-size" => {
                options.chunk_size_kib = next_value(&mut arguments, "--chunk-size")?
                    .parse()
                    .map_err(|e| format!("invalid chunk size: {e}"))?;
            }
            "--member-size" => {
                options.member_size_kib = next_value(&mut arguments, "--member-size")?
                    .parse()
                    .map_err(|e| format!("invalid member size: {e}"))?;
            }
            "--export-index" => {
                options.export_index = Some(next_value(&mut arguments, "--export-index")?);
            }
            "--index-format" => {
                options.index_format = next_value(&mut arguments, "--index-format")?.parse()?;
            }
            "-o" | "--output" => {
                options.output = Some(next_value(&mut arguments, "-o")?);
            }
            "--metrics-export" => {
                options.metrics_export = Some(next_value(&mut arguments, "--metrics-export")?);
            }
            other if !other.starts_with('-') && options.file.is_empty() => {
                options.file = other.to_string();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if options.file.is_empty() {
        return Err("no input file given".to_string());
    }
    Ok(options)
}

fn run_compress(options: &CompressOptions) -> Result<(), String> {
    use rgz_compress::{
        CompressionLevel, ContainerFormat, ParallelCompressor, ParallelCompressorOptions,
    };

    let data =
        std::fs::read(&options.file).map_err(|e| format!("cannot read {}: {e}", options.file))?;
    let input_bytes = data.len() as u64;

    let registry = if options.metrics_export.is_some() {
        Arc::new(MetricsRegistry::new_enabled())
    } else {
        MetricsRegistry::shared_disabled()
    };
    let mut compressor = ParallelCompressor::new(ParallelCompressorOptions {
        level: CompressionLevel::from_numeric(options.level),
        container: if options.bgzf {
            ContainerFormat::Bgzf
        } else {
            ContainerFormat::Pigz
        },
        chunk_size: options.chunk_size_kib.max(1) * 1024,
        member_size: options.member_size_kib.max(1) * 1024,
        parallelization: options.threads.max(1),
        ..Default::default()
    });
    if options.metrics_export.is_some() {
        compressor = compressor.with_metrics(&registry);
    }
    let compress_start = std::time::Instant::now();
    let stream = compressor.compress_shared(std::sync::Arc::from(data));
    let compress_elapsed = compress_start.elapsed();

    let output_path = options
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.gz", options.file));
    if output_path == "-" {
        let stdout = std::io::stdout();
        let mut sink = stdout.lock();
        sink.write_all(&stream.bytes).map_err(|e| e.to_string())?;
        sink.flush().map_err(|e| e.to_string())?;
    } else {
        std::fs::write(&output_path, &stream.bytes)
            .map_err(|e| format!("cannot write {output_path}: {e}"))?;
    }

    if let Some(path) = &options.export_index {
        let (serialized, report) =
            rgz_interop::export_index_with_report(&stream.index, options.index_format);
        std::fs::write(path, &serialized).map_err(|e| e.to_string())?;
        eprintln!(
            "rgzip: exported {} index with {} seek points ({} bytes) to {path}",
            options.index_format,
            stream.index.block_map.len(),
            serialized.len()
        );
        if report.checksummed_points_dropped > 0 {
            eprintln!(
                "rgzip: warning: {} format cannot store CRC-32 fragments; dropped \
                 checksums for {} seek point(s) (use --index-format v3 to keep them)",
                options.index_format, report.checksummed_points_dropped
            );
        }
    }

    if options.verbose {
        eprintln!(
            "rgzip: layout: {} member(s), {} chunk(s), {} seek point(s), all with CRC fragments",
            stream.members,
            stream.chunks,
            stream.index.block_map.len()
        );
    }
    if let Some(path) = &options.metrics_export {
        std::fs::write(path, registry.render_prometheus())
            .map_err(|e| format!("cannot write metrics {path}: {e}"))?;
        eprintln!("rgzip: wrote Prometheus metrics to {path}");
    }
    eprintln!(
        "rgzip: {} bytes compressed to {} ({:.2}x) in {:.2} s ({:.1} MB/s, {} threads)",
        input_bytes,
        stream.bytes.len(),
        input_bytes as f64 / (stream.bytes.len() as f64).max(1.0),
        compress_elapsed.as_secs_f64(),
        input_bytes as f64 / 1e6 / compress_elapsed.as_secs_f64().max(1e-9),
        options.threads.max(1)
    );
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("compress") {
        return match parse_compress_arguments(std::env::args().skip(2)) {
            Ok(options) => match run_compress(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(message) => {
                    eprintln!("rgzip: {message}");
                    ExitCode::FAILURE
                }
            },
            Err(message) => {
                eprintln!("rgzip: {message}");
                print_compress_usage();
                ExitCode::from(2)
            }
        };
    }
    match parse_arguments() {
        Ok(options) => match run(&options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("rgzip: {message}");
                ExitCode::FAILURE
            }
        },
        Err(message) => {
            eprintln!("rgzip: {message}");
            print_usage();
            ExitCode::from(2)
        }
    }
}
