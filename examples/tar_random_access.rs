//! Random access into a gzip-compressed TAR archive — the ratarmount use
//! case that motivates constant-time seeking (§1.3, §3.1).
//!
//! A TAR archive with many files is gzip-compressed; an index is built once;
//! individual files are then extracted with seeks instead of decompressing
//! the whole archive.
//!
//! Run with: `cargo run --release --example tar_random_access`

use std::io::{Read, Seek, SeekFrom};

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen::{self, TarEntry};
use rapidgzip_suite::gzip::GzipWriter;
use rapidgzip_suite::io::SharedFileReader;

fn main() {
    // Build a TAR archive with 200 files of varying content.
    let entries: Vec<TarEntry> = (0..200)
        .map(|i| TarEntry {
            name: format!("data/file_{i:04}.txt"),
            data: datagen::silesia_like(20_000 + (i % 7) * 13_000, i as u64),
        })
        .collect();
    let archive = datagen::tar_archive(&entries);
    let compressed = GzipWriter::default().compress(&archive);
    println!(
        "archive: {} files, {} bytes TAR, {} bytes gzip",
        entries.len(),
        archive.len(),
        compressed.len()
    );

    // First pass: build the seek-point index (done on the fly while reading).
    let options = ParallelGzipReaderOptions::default().with_chunk_size(256 * 1024);
    let shared = SharedFileReader::from_bytes(compressed);
    let mut reader = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
    let index = reader.build_full_index().unwrap();
    println!("index: {} seek points", index.block_map.len());

    // Locate the TAR members without decompressing everything again: the TAR
    // headers are parsed from the decompressed stream via seeks.
    let mut indexed_reader = ParallelGzipReader::with_index(shared, options, index).unwrap();
    let toc = datagen::tar_entries(&archive);

    // Extract three files scattered across the archive by seeking directly
    // to their contents.
    for &(ref name, offset, size) in [&toc[3], &toc[97], &toc[199]].iter().copied() {
        let start = std::time::Instant::now();
        indexed_reader.seek(SeekFrom::Start(offset as u64)).unwrap();
        let mut contents = vec![0u8; size];
        indexed_reader.read_exact(&mut contents).unwrap();
        let original = &entries.iter().find(|e| &e.name == name).unwrap().data;
        assert_eq!(&contents, original);
        println!(
            "extracted {name:>22} ({size:>7} bytes) via seek in {:.2} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}
