//! Writes the deterministic CI round-trip corpora to a directory.
//!
//! ```text
//! cargo run --release --example make_corpora -- <output-dir>
//! ```
//!
//! Emits `silesia.bin` (structured text, compresses ~3.4x) and `base64.bin`
//! (high-entropy printable data, compresses ~1.3x) from fixed seeds. The CI
//! `round-trip` job compresses these with `rgz compress` at several levels
//! and in both container layouts, then checks the output against the system
//! `gzip`/`zcat`, the parallel reader, and indexed random access.

fn main() {
    let directory = std::env::args()
        .nth(1)
        .expect("usage: make_corpora <output-dir>");
    let directory = std::path::PathBuf::from(directory);
    std::fs::create_dir_all(&directory).expect("cannot create the output directory");

    for (name, data) in [
        ("silesia.bin", rgz_datagen::silesia_like(4 << 20, 2601)),
        ("base64.bin", rgz_datagen::base64_random(3 << 20, 2602)),
    ] {
        std::fs::write(directory.join(name), &data).unwrap();
        println!("wrote {name}: {} bytes", data.len());
    }
}
