//! Export a seek-point index after the first decompression and reuse it for a
//! much faster second pass and for constant-time random access (§1.3).
//!
//! Run with: `cargo run --release --example index_reuse`

use std::io::{Read, Seek, SeekFrom};

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::GzipWriter;
use rapidgzip_suite::index::{GzipIndex, IndexFormat};
use rapidgzip_suite::io::SharedFileReader;

fn main() {
    let data = datagen::silesia_like(32 << 20, 3);
    let compressed = GzipWriter::default().compress(&data);
    let shared = SharedFileReader::from_bytes(compressed);
    let options = ParallelGzipReaderOptions::default().with_chunk_size(1 << 20);

    // Pass 1: decompress while building the index, then export it.  Windows
    // are held compressed and sparsified in memory; the default v2 export
    // writes those compressed records directly, while a v1 export
    // reconstructs raw windows for compatibility with older readers.
    let start = std::time::Instant::now();
    let mut first = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
    let size = first.decompress_all().unwrap().len();
    let index = first.build_full_index().unwrap();
    let serialized = index.export_as(IndexFormat::V2);
    let first_pass = start.elapsed();
    println!(
        "pass 1 (no index): {size} bytes in {:.2} s; exported index of {} bytes / {} seek points",
        first_pass.as_secs_f64(),
        serialized.len(),
        index.block_map.len()
    );
    let raw = index.export_as(IndexFormat::V1);
    let windows = first.window_statistics();
    println!(
        "index formats    : v1 (raw windows) {} bytes, v2 (compressed) {} bytes ({:.1}x smaller)",
        raw.len(),
        serialized.len(),
        raw.len() as f64 / serialized.len() as f64
    );
    println!(
        "window store     : {} windows, {} raw -> {} stored bytes in memory ({:.1}x)",
        windows.windows,
        windows.original_bytes,
        windows.stored_bytes,
        windows.compression_ratio()
    );

    // Pass 2: import the index and decompress again — no block finding, no
    // two-stage decoding, balanced chunks.
    let start = std::time::Instant::now();
    let imported = GzipIndex::import(&serialized).unwrap();
    let mut second =
        ParallelGzipReader::with_index(shared.clone(), options.clone(), imported).unwrap();
    assert_eq!(second.decompress_all().unwrap().len(), size);
    let second_pass = start.elapsed();
    println!(
        "pass 2 (index)   : {size} bytes in {:.2} s ({:.2}x the first pass)",
        second_pass.as_secs_f64(),
        first_pass.as_secs_f64() / second_pass.as_secs_f64().max(1e-9)
    );

    // Constant-time random access through the imported index.
    let imported = GzipIndex::import(&serialized).unwrap();
    let mut random = ParallelGzipReader::with_index(shared, options, imported).unwrap();
    let mut buffer = vec![0u8; 64 * 1024];
    for &offset in &[1_000_000u64, 17_000_000, 30_000_000] {
        let start = std::time::Instant::now();
        random.seek(SeekFrom::Start(offset)).unwrap();
        random.read_exact(&mut buffer).unwrap();
        assert_eq!(
            &buffer[..],
            &data[offset as usize..offset as usize + buffer.len()]
        );
        println!(
            "random read of 64 KiB at offset {offset:>9}: {:.2} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}
