//! Export a seek-point index after the first decompression and reuse it for a
//! much faster second pass and for constant-time random access (§1.3).
//!
//! Run with: `cargo run --release --example index_reuse`

use std::io::{Read, Seek, SeekFrom};

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::GzipWriter;
use rapidgzip_suite::index::GzipIndex;
use rapidgzip_suite::io::SharedFileReader;

fn main() {
    let data = datagen::silesia_like(32 << 20, 3);
    let compressed = GzipWriter::default().compress(&data);
    let shared = SharedFileReader::from_bytes(compressed);
    let options = ParallelGzipReaderOptions::default().with_chunk_size(1 << 20);

    // Pass 1: decompress while building the index, then export it.
    let start = std::time::Instant::now();
    let mut first = ParallelGzipReader::new(shared.clone(), options.clone()).unwrap();
    let size = first.decompress_all().unwrap().len();
    let index = first.build_full_index().unwrap();
    let serialized = index.export();
    let first_pass = start.elapsed();
    println!(
        "pass 1 (no index): {size} bytes in {:.2} s; exported index of {} bytes / {} seek points",
        first_pass.as_secs_f64(),
        serialized.len(),
        index.block_map.len()
    );

    // Pass 2: import the index and decompress again — no block finding, no
    // two-stage decoding, balanced chunks.
    let start = std::time::Instant::now();
    let imported = GzipIndex::import(&serialized).unwrap();
    let mut second =
        ParallelGzipReader::with_index(shared.clone(), options.clone(), imported).unwrap();
    assert_eq!(second.decompress_all().unwrap().len(), size);
    let second_pass = start.elapsed();
    println!(
        "pass 2 (index)   : {size} bytes in {:.2} s ({:.2}x the first pass)",
        second_pass.as_secs_f64(),
        first_pass.as_secs_f64() / second_pass.as_secs_f64().max(1e-9)
    );

    // Constant-time random access through the imported index.
    let imported = GzipIndex::import(&serialized).unwrap();
    let mut random = ParallelGzipReader::with_index(shared, options, imported).unwrap();
    let mut buffer = vec![0u8; 64 * 1024];
    for &offset in &[1_000_000u64, 17_000_000, 30_000_000] {
        let start = std::time::Instant::now();
        random.seek(SeekFrom::Start(offset)).unwrap();
        random.read_exact(&mut buffer).unwrap();
        assert_eq!(
            &buffer[..],
            &data[offset as usize..offset as usize + buffer.len()]
        );
        println!(
            "random read of 64 KiB at offset {offset:>9}: {:.2} ms",
            start.elapsed().as_secs_f64() * 1e3
        );
    }
}
