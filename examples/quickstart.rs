//! Quickstart: compress a payload with the pure-Rust gzip writer and
//! decompress it in parallel with `ParallelGzipReader`.
//!
//! Run with: `cargo run --release --example quickstart`

use std::io::Read;

use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::GzipWriter;

fn main() {
    // 16 MiB of a Silesia-like mixed corpus.
    let data = datagen::silesia_like(16 << 20, 1);
    println!("original size      : {:>12} bytes", data.len());

    let compressed = GzipWriter::default().compress(&data);
    println!(
        "compressed size    : {:>12} bytes (ratio {:.2})",
        compressed.len(),
        data.len() as f64 / compressed.len() as f64
    );

    // Parallel decompression with all cores; chunk size 512 KiB.
    let options = ParallelGzipReaderOptions::default().with_chunk_size(512 * 1024);
    let start = std::time::Instant::now();
    let mut reader = ParallelGzipReader::from_bytes(compressed, options).unwrap();
    let mut restored = Vec::new();
    reader.read_to_end(&mut restored).unwrap();
    let elapsed = start.elapsed();

    assert_eq!(restored, data);
    println!(
        "parallel decompress: {:>12} bytes in {:.3} s ({:.1} MB/s, {} threads)",
        restored.len(),
        elapsed.as_secs_f64(),
        restored.len() as f64 / 1e6 / elapsed.as_secs_f64(),
        reader.options().parallelization,
    );
    let statistics = reader.statistics();
    println!(
        "speculative chunks used: {}",
        statistics.speculative_chunks_used
    );
    println!("on-demand chunks       : {}", statistics.on_demand_chunks);
}
