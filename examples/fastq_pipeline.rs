//! A decompress-and-process pipeline over gzip-compressed FASTQ data — the
//! kind of genomics workload pugz (and Figure 11) targets: count records and
//! tally base frequencies while decompressing in parallel.
//!
//! Run with: `cargo run --release --example fastq_pipeline`

use std::io::{BufRead, BufReader};

use rapidgzip_suite::baselines::PugzDecompressor;
use rapidgzip_suite::core::{ParallelGzipReader, ParallelGzipReaderOptions};
use rapidgzip_suite::datagen;
use rapidgzip_suite::gzip::GzipWriter;

fn main() {
    let data = datagen::fastq_records(200_000, 9);
    let compressed = GzipWriter::default().compress_pigz_like(&data, 128 * 1024);
    println!(
        "FASTQ corpus: {} bytes, compressed {} bytes",
        data.len(),
        compressed.len()
    );

    // Stream the decompressed data through a BufReader and process it.
    let options = ParallelGzipReaderOptions::default().with_chunk_size(512 * 1024);
    let start = std::time::Instant::now();
    let reader = ParallelGzipReader::from_bytes(compressed.clone(), options).unwrap();
    let mut records = 0u64;
    let mut bases = [0u64; 4];
    for (line_index, line) in BufReader::new(reader).lines().enumerate() {
        let line = line.unwrap();
        match line_index % 4 {
            0 => records += 1,
            1 => {
                for byte in line.bytes() {
                    match byte {
                        b'A' => bases[0] += 1,
                        b'C' => bases[1] += 1,
                        b'G' => bases[2] += 1,
                        b'T' => bases[3] += 1,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    println!(
        "rapidgzip pipeline: {records} records, A/C/G/T = {bases:?} in {:.2} s",
        start.elapsed().as_secs_f64()
    );

    // The same corpus also satisfies pugz's ASCII restriction, so the
    // baseline can decode it too (unlike arbitrary binary data).
    let start = std::time::Instant::now();
    let pugz = PugzDecompressor {
        threads: 4,
        chunk_size: 512 * 1024,
        synchronized: true,
    };
    let restored = pugz.decompress(&compressed).unwrap();
    assert_eq!(restored.len(), data.len());
    println!(
        "pugz baseline     : {} bytes in {:.2} s",
        restored.len(),
        start.elapsed().as_secs_f64()
    );
}
