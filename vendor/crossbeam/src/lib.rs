//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` MPMC unbounded channel surface the
//! workspace uses (clonable `Sender`/`Receiver`, disconnect-on-drop) over a
//! `Mutex<VecDeque>` plus a `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        available: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders still exist.
        Empty,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    /// The sending half of an unbounded MPMC channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded MPMC channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.available.notify_one();
            Ok(())
        }

        /// Whether the queue currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Whether the queue currently holds no messages.
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_multiple_receivers_share_the_queue() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut seen = Vec::new();
            while let Ok(v) = rx.try_recv() {
                seen.push(v);
                if let Ok(v) = rx2.try_recv() {
                    seen.push(v);
                }
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_with_no_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }
    }
}
