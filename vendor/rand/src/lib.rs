//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, and `Rng::{gen, gen_range,
//! gen_bool, fill}` — on top of a xoshiro256** generator seeded through
//! SplitMix64. Unlike the real `StdRng`, the output stream here is
//! *guaranteed* stable across platforms and releases, which is exactly what
//! the deterministic test corpora need.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let remainder = chunks.into_remainder();
        if !remainder.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            remainder.copy_from_slice(&bytes[..remainder.len()]);
        }
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            chunk.copy_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the full generator output.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Converts to the widest intermediate type.
    fn to_u64(self) -> u64;
    /// Converts back from the widest intermediate type.
    fn from_u64(value: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(value: u64) -> Self {
                value as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                // Order-preserving map into u64: shift the signed range up so
                // that MIN maps to 0.
                (self as i64).wrapping_sub(i64::MIN) as u64
            }
            fn from_u64(value: u64) -> Self {
                (value as i64).wrapping_add(i64::MIN) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Bounds as an inclusive `[low, high]` pair.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "gen_range: empty range");
        (self.start, T::from_u64(self.end.to_u64() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        (start, end)
    }
}

/// User-facing convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (unbiased via rejection).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (low, high) = range.bounds();
        let (low_w, high_w) = (low.to_u64(), high.to_u64());
        let span = high_w - low_w + 1; // span == 0 means the full u64 range
        if span == 0 {
            return T::from_u64(self.next_u64());
        }
        // Rejection sampling: retry draws in the biased tail.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let draw = self.next_u64();
            if draw <= zone {
                return T::from_u64(low_w + draw % span);
            }
        }
    }

    /// Returns `true` with probability `probability`.
    fn gen_bool(&mut self, probability: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&probability),
            "gen_bool: p out of range"
        );
        f64::sample(self) < probability
    }

    /// Fills the buffer with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stable across platforms).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.state[1] << 17;
            self.state[2] ^= self.state[0];
            self.state[3] ^= self.state[1];
            self.state[1] ^= self.state[2];
            self.state[0] ^= self.state[3];
            self.state[2] ^= t;
            self.state[3] = self.state[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = [0u64; 4];
            for (word, chunk) in state.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if state.iter().all(|&w| w == 0) {
                state = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let left: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let right: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(left, right);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(left, (0..64).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let exclusive = rng.gen_range(10..20u32);
            assert!((10..20).contains(&exclusive));
            let inclusive = rng.gen_range(b'a'..=b'z');
            assert!(inclusive.is_ascii_lowercase());
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((500..1500).contains(&hits), "p=0.1 produced {hits}/10000");
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut buffer = [0u8; 13];
        rng.fill(&mut buffer);
        assert!(buffer.iter().any(|&b| b != 0));
    }
}
