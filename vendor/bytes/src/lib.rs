//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so this vendor crate
//! implements the small slice of the real `bytes` API the workspace uses:
//! [`Bytes`] as a cheaply clonable, immutable, contiguous byte buffer.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
///
/// Internally an `Arc<[u8]>` plus a sub-range, so `clone` and `slice` are
/// O(1) and never copy the payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Copies a static/borrowed slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a zero-copy sub-slice of this buffer.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len(), "slice out of bounds");
        Self {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let data: Arc<[u8]> = data.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Self::from(data.as_bytes().to_vec())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_cheap_and_shares_storage() {
        let bytes = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let clone = bytes.clone();
        assert_eq!(&bytes[..], &clone[..]);
        assert_eq!(Arc::strong_count(&bytes.data), 2);
    }

    #[test]
    fn slice_is_zero_copy() {
        let bytes = Bytes::from((0u8..100).collect::<Vec<_>>());
        let middle = bytes.slice(10..20);
        assert_eq!(&middle[..], &(10u8..20).collect::<Vec<_>>()[..]);
        let nested = middle.slice(2..=4);
        assert_eq!(&nested[..], &[12, 13, 14]);
    }

    #[test]
    fn empty_and_equality() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::copy_from_slice(&[1, 2]));
    }
}
