//! Offline stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives with the `parking_lot` call surface the
//! workspace uses: infallible `lock()` / `read()` / `write()` that recover
//! from poisoning instead of returning `Result`s, plus a matching `Condvar`.

use std::sync::{self, PoisonError};

pub use sync::MutexGuard;
pub use sync::{RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_unlocks() {
        let mutex = Mutex::new(1);
        *mutex.lock() += 1;
        assert_eq!(*mutex.lock(), 2);
        assert!(mutex.try_lock().is_some());
    }

    #[test]
    fn rwlock_allows_multiple_readers() {
        let lock = RwLock::new(5);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *lock.write() = 7;
        assert_eq!(*lock.read(), 7);
    }
}
