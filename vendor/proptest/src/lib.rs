//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x surface this workspace's tests
//! use: the `proptest!` macro, `prop_assert*`/`prop_assume!`/`prop_oneof!`,
//! `any::<T>()`, `Just`, range strategies, tuple strategies and
//! `collection::vec`. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name), and failing inputs are printed; there is no
//! shrinking — a failure reports the raw generated case.

use rand::rngs::StdRng;

#[doc(hidden)]
pub use rand as __rand;

/// Runtime configuration, mirroring `proptest::test_runner::Config`.
pub mod test_runner {
    /// How many cases each property test executes.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Marker for a case rejected by `prop_assume!`.
    #[derive(Debug)]
    pub struct Rejected;
}

/// Value generators.
pub mod strategy {
    use super::StdRng;
    use rand::{Rng, Standard};

    /// Generates values of an associated type from an RNG.
    ///
    /// Unlike real proptest there is no value tree or shrinking: a strategy
    /// simply samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    /// Strategy for any value of a samplable type; see [`super::any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: std::marker::PhantomData,
            }
        }
    }

    impl<T: Standard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// Strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )+};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    let unit: $t = rng.gen();
                    self.start + unit * (self.end - self.start)
                }
            }
        )+};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $index:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$index.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Uniform choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over at least one option.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;

    use rand::Rng;

    /// Inclusive-min / exclusive-max bounds on a generated collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(range: std::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty collection size range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(range: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s with random lengths and elements.
    pub struct VecStrategy<E> {
        element: E,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` bounds the length, `element` draws each item.
    pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let length = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..length).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Returns a strategy for an arbitrary value of `T`.
pub fn any<T: rand::Standard>() -> strategy::Any<T> {
    strategy::Any::default()
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Derives a deterministic RNG seed from a test name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a: stable across platforms, good enough to decorrelate tests.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Declares property tests; see the real proptest's docs for the syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut executed = 0u32;
            let mut attempts = 0u32;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20),
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if outcome.is_ok() {
                    executed += 1;
                }
            }
        }
    )*};
}

/// `assert!` that participates in a property-test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// `assert_eq!` that participates in a property-test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// `assert_ne!` that participates in a property-test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Rejects the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            value in 10u32..20,
            inclusive in 1u8..=3,
            items in crate::collection::vec(any::<u16>(), 2..6),
            choice in prop_oneof![Just(1i32), Just(2), Just(3)],
        ) {
            prop_assert!((10..20).contains(&value));
            prop_assert!((1..=3).contains(&inclusive));
            prop_assert!(items.len() >= 2 && items.len() < 6);
            prop_assert!((1..=3).contains(&choice));
        }

        #[test]
        fn assume_rejects_without_failing(seed in any::<u64>()) {
            prop_assume!(seed % 2 == 0);
            prop_assert_eq!(seed % 2, 0);
            prop_assert_ne!(seed % 2, 1);
        }
    }

    #[test]
    fn seeds_differ_per_name_and_are_stable() {
        assert_eq!(crate::seed_for("a"), crate::seed_for("a"));
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    #[test]
    fn float_range_strategy_stays_in_bounds() {
        use crate::strategy::Strategy;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        for _ in 0..1000 {
            let sample = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&sample));
        }
    }
}
