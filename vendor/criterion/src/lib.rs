//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`) with a deliberately simple
//! wall-clock measurement loop: warm up once, run `sample_size` timed
//! samples, report the best sample and derived throughput to stdout. It has
//! none of criterion's statistics, but it runs the same bench code with the
//! same call shapes, so benches stay compiling and runnable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.render(), self.sample_size, None, |bencher| {
            routine(bencher)
        });
        self
    }
}

/// A set of benchmarks sharing a name prefix and throughput definition.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Declares how much data one iteration processes, enabling
    /// bytes-per-second reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a routine under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, self.throughput, |bencher| {
            routine(bencher)
        });
        self
    }

    /// Benchmarks a routine that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.render());
        run_benchmark(&label, self.sample_size, self.throughput, |bencher| {
            routine(bencher, input)
        });
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(function), Some(parameter)) => format!("{function}/{parameter}"),
            (Some(function), None) => function.clone(),
            (None, Some(parameter)) => parameter.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            function: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            function: Some(name),
            parameter: None,
        }
    }
}

/// Amount of work one iteration performs, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to each benchmark routine.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` and keeps the fastest observed sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        self.best = Some(match self.best {
            Some(best) => best.min(elapsed),
            None => elapsed,
        });
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    let mut bencher = Bencher { best: None };
    // Warm-up sample, then the timed samples; `Bencher::iter` keeps the best.
    for _ in 0..=sample_size {
        routine(&mut bencher);
    }
    let best = bencher.best.unwrap_or_default();
    let rate = throughput.and_then(|throughput| {
        let seconds = best.as_secs_f64();
        if seconds <= 0.0 {
            return None;
        }
        Some(match throughput {
            Throughput::Bytes(bytes) => {
                format!(" ({:.1} MiB/s)", bytes as f64 / seconds / (1 << 20) as f64)
            }
            Throughput::Elements(elements) => {
                format!(" ({:.0} elem/s)", elements as f64 / seconds)
            }
        })
    });
    println!(
        "bench {label}: best {best:?} over {sample_size} samples{}",
        rate.unwrap_or_default()
    );
}

/// Defines a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut criterion = Criterion::default().sample_size(3);
        let mut group = criterion.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(1024));
        let mut runs = 0usize;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(runs >= 3);
    }
}
